package core

import (
	"testing"

	"transer/internal/testkit"
)

// Differential suite across the switchable SEL engines (DESIGN.md
// §10). The three exact modes — reference (seed grouping), dedup
// (unique vectors against pointer trees) and exact (weighted flat
// trees, the default) — must all agree verbatim with the naive
// per-instance referenceSelect, including under conflicting-label
// duplicates and signed zeros. The approximate mode only has to be
// deterministic, close to the exact answer, and exactly equal where
// its fallback triggers.

// selModesProblem builds a duplicate-heavy grid problem with labels
// assigned independently of vectors, so identical vectors carry
// conflicting labels — the regime where the group-decision machinery
// of each engine is easiest to get wrong.
func selModesProblem(pt *testkit.T) (xs [][]float64, ys []int, xt [][]float64, cfg Config) {
	n := 3*pt.Size + 12
	m := 2 + pt.Rng.Intn(3)
	xs = testkit.GridMatrix(pt.Rng, n, m)
	ys = make([]int, n)
	for i := range ys {
		ys[i] = pt.Rng.Intn(2)
	}
	for k := 0; k < n/3; k++ {
		xs[pt.Rng.Intn(n)] = xs[pt.Rng.Intn(n)]
	}
	xt = testkit.GridMatrix(pt.Rng, n/2+8, m)
	cfg = Config{
		K:          []int{3, 5, 7}[pt.Rng.Intn(3)],
		TC:         []float64{0.5, 0.7, 0.9}[pt.Rng.Intn(3)],
		TL:         []float64{0.5, 0.7, 0.9}[pt.Rng.Intn(3)],
		TP:         0.9,
		B:          3,
		EnableSimV: pt.Rng.Intn(2) == 0,
		TV:         0.7,
		Workers:    1 + pt.Rng.Intn(4),
	}
	return xs, ys, xt, cfg
}

// TestSELModesExactEquivalence: every exact engine returns the exact
// per-instance selection, bitwise, on duplicate-heavy data.
func TestSELModesExactEquivalence(t *testing.T) {
	modes := []string{"", SELModeExact, SELModeDedup, SELModeReference}
	testkit.Run(t, "selector/modes-exact-equivalence", 20, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		want := referenceSelect(xs, ys, xt, cfg)
		for _, mode := range modes {
			cfg.SELMode = mode
			got := SelectInstances(xs, ys, xt, cfg)
			if !testkit.EqualInts(got, want) {
				pt.Errorf("mode %q kept %v, reference kept %v (cfg=%+v)",
					mode, got, want, cfg)
				return
			}
		}
	})
}

// TestSELModeApproxDeterministic: the LSH engine is seeded from
// cfg.Seed, so repeated runs with an identical config must return an
// identical selection regardless of Workers.
func TestSELModeApproxDeterministic(t *testing.T) {
	testkit.Run(t, "selector/approx-deterministic", 12, func(pt *testkit.T) {
		xs, ys, xt, cfg := selModesProblem(pt)
		cfg.SELMode = SELModeApprox
		cfg.Seed = int64(pt.Rng.Intn(5))
		first := SelectInstances(xs, ys, xt, cfg)
		cfg.Workers = 1 + pt.Rng.Intn(4)
		second := SelectInstances(xs, ys, xt, cfg)
		if !testkit.EqualInts(first, second) {
			pt.Errorf("approx selection not deterministic: %v then %v", first, second)
		}
	})
}

// TestSELModeApproxFallbackTinyData: with fewer source instances than
// k every LSH candidate bucket is lighter than k, so every query takes
// the exact-fallback branch — the approximate mode must then be
// byte-identical to the exact engine.
func TestSELModeApproxFallbackTinyData(t *testing.T) {
	testkit.Run(t, "selector/approx-fallback", 12, func(pt *testkit.T) {
		m := 2 + pt.Rng.Intn(3)
		k := 7
		n := 2 + pt.Rng.Intn(k-2) // n < k: total candidate weight < k everywhere
		xs := testkit.GridMatrix(pt.Rng, n, m)
		ys := make([]int, n)
		for i := range ys {
			ys[i] = pt.Rng.Intn(2)
		}
		xt := testkit.GridMatrix(pt.Rng, n, m)
		cfg := Config{K: k, TC: 0.5, TL: 0.5, TP: 0.9, B: 3}
		cfg.SELMode = SELModeExact
		want := SelectInstances(xs, ys, xt, cfg)
		cfg.SELMode = SELModeApprox
		got := SelectInstances(xs, ys, xt, cfg)
		if !testkit.EqualInts(got, want) {
			pt.Errorf("n=%d < k=%d: approx %v, exact %v", n, k, got, want)
		}
	})
}

// TestSELModeApproxOverlapBound is the metamorphic accuracy bound on
// the approximate engine: over duplicate-heavy quantized problems the
// per-instance keep/drop decisions must agree with the exact engine on
// at least 70% of instances. The 0.05 LSH grid aligns with the data's
// own quantization, so in practice agreement is far higher; the bound
// only guards against the engine degenerating into noise.
func TestSELModeApproxOverlapBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		xs, ys, xt := quantizedProblem(200, 3, seed)
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.SELMode = SELModeExact
		exact := SelectInstances(xs, ys, xt, cfg)
		cfg.SELMode = SELModeApprox
		approx := SelectInstances(xs, ys, xt, cfg)

		keep := func(sel []int) []bool {
			b := make([]bool, len(xs))
			for _, i := range sel {
				b[i] = true
			}
			return b
		}
		ke, ka := keep(exact), keep(approx)
		agree := 0
		for i := range ke {
			if ke[i] == ka[i] {
				agree++
			}
		}
		if ratio := float64(agree) / float64(len(xs)); ratio < 0.7 {
			t.Errorf("seed %d: approx agrees with exact on %.0f%% of instances (exact kept %d, approx kept %d)",
				seed, ratio*100, len(exact), len(approx))
		}
	}
}

// TestValidateSELMode: Validate accepts every published mode and
// rejects anything else.
func TestValidateSELMode(t *testing.T) {
	for _, mode := range []string{"", SELModeExact, SELModeDedup, SELModeReference, SELModeApprox} {
		cfg := DefaultConfig()
		cfg.SELMode = mode
		if err := cfg.Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
	cfg := DefaultConfig()
	cfg.SELMode = "annoy"
	if err := cfg.Validate(); err == nil {
		t.Errorf("unknown SELMode accepted")
	}
}
