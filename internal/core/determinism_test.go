package core

import (
	"math"
	"runtime"
	"strconv"
	"testing"
)

// runAt executes Run with a fixed worker count and fails the test on
// error.
func runAt(t *testing.T, xs [][]float64, ys []int, xt [][]float64, workers int) *Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = workers
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return res
}

// sameResult compares the transferred outputs bitwise (probabilities
// via Float64bits so -0.0 vs 0.0 or NaN payload drift would fail).
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Labels) != len(b.Labels) || len(a.Proba) != len(b.Proba) {
		t.Fatalf("%s: output sizes differ", label)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("%s: labels differ at %d: %d vs %d", label, i, a.Labels[i], b.Labels[i])
		}
		if math.Float64bits(a.Proba[i]) != math.Float64bits(b.Proba[i]) {
			t.Fatalf("%s: probabilities differ at %d: %v vs %v", label, i, a.Proba[i], b.Proba[i])
		}
		if a.PseudoLabels[i] != b.PseudoLabels[i] {
			t.Fatalf("%s: pseudo labels differ at %d", label, i)
		}
	}
	if a.Stats.Selected != b.Stats.Selected || a.Stats.HighConfidence != b.Stats.HighConfidence {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, a.Stats, b.Stats)
	}
}

// TestRunIdenticalAcrossWorkerCounts is the pipeline-level determinism
// guarantee: the worker count is a throughput knob, never a results
// knob. The target is large enough (>512 rows) to take the chunked
// parallel prediction path in both GEN and TCL.
func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	xs, ys, xt, _ := transferProblem(400, 1200, 0.05, 0.2, 21)
	serial := runAt(t, xs, ys, xt, 1)
	for _, w := range []int{2, 8} {
		sameResult(t, "workers=1 vs workers="+strconv.Itoa(w), serial, runAt(t, xs, ys, xt, w))
	}
	// Oversubscribed: 8 workers on a single scheduler thread must not
	// change results either (the ISSUE's GOMAXPROCS=1 regime).
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	sameResult(t, "GOMAXPROCS=1 workers=8", serial, runAt(t, xs, ys, xt, 8))
}

// TestSelectInstancesIdenticalAcrossWorkers pins the SEL phase alone:
// the selected index list must not depend on how the duplicate groups
// are chunked over goroutines.
func TestSelectInstancesIdenticalAcrossWorkers(t *testing.T) {
	xs, ys, xt := quantizedProblem(300, 3, 17)
	base := SelectInstances(xs, ys, xt, Config{K: 5, TC: 0.7, TL: 0.7, TP: 0.9, B: 3, Workers: 1})
	for _, w := range []int{2, 5, 16} {
		got := SelectInstances(xs, ys, xt, Config{K: 5, TC: 0.7, TL: 0.7, TP: 0.9, B: 3, Workers: w})
		if len(got) != len(base) {
			t.Fatalf("workers=%d: kept %d, serial kept %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: selection differs at position %d", w, i)
			}
		}
	}
}
