package core

import (
	"math/rand"
	"testing"
)

// blob samples count rows of dim features around centre.
func blob(rng *rand.Rand, count, dim int, centre float64) [][]float64 {
	out := make([][]float64, count)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = clamp(centre + rng.NormFloat64()*0.04)
		}
		out[i] = row
	}
	return out
}

// TestSelectedFallbackOnSingleClassSelection drives the selector into a
// state where it keeps instances of only one class: a pure match
// cluster passes t_c while a mixed-label cluster fails it. Run must
// then fall back to the full source (a one-class training set is
// useless) and record the fallback in Stats.
func TestSelectedFallbackOnSingleClassSelection(t *testing.T) {
	var xs [][]float64
	var ys []int
	// Pure cluster: 12 copies of (0.8, 0.8) labelled match.
	for i := 0; i < 12; i++ {
		xs = append(xs, []float64{0.8, 0.8})
		ys = append(ys, 1)
	}
	// Conflicting cluster: 12 copies of (0.2, 0.2) with alternating
	// labels, so every neighbourhood is a coin flip (sim_c ~ 0.5).
	for i := 0; i < 12; i++ {
		xs = append(xs, []float64{0.2, 0.2})
		ys = append(ys, i%2)
	}
	xt := [][]float64{{0.8, 0.8}, {0.2, 0.2}, {0.8, 0.8}, {0.2, 0.2}}
	cfg := DefaultConfig()
	cfg.TC = 0.9 // pure cluster passes (sim_c = 1), mixed fails

	if sel := SelectInstances(xs, ys, xt, cfg); !singleClass(ys, sel) {
		t.Fatalf("setup broken: selection %v spans both classes", sel)
	}
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.SelectedFallback {
		t.Errorf("expected SelectedFallback when selection is single-class")
	}
	if res.Stats.Selected != len(xs) {
		t.Errorf("fallback should train on the full source: Selected = %d, want %d",
			res.Stats.Selected, len(xs))
	}
	if len(res.Labels) != len(xt) {
		t.Errorf("fallback produced wrong output size")
	}
}

// TestTCLFallbackOnSingleClassPseudoLabels: when every target instance
// is confidently pseudo-labelled with the same class, the TCL training
// set is unusable and GEN's predictions must be returned as-is.
func TestTCLFallbackOnSingleClassPseudoLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	xs := append(blob(rng, 40, 3, 0.8), blob(rng, 40, 3, 0.2)...)
	ys := make([]int, 80)
	for i := 0; i < 40; i++ {
		ys[i] = 1
	}
	// Target contains only match-like rows: GEN labels all of them 1.
	xt := blob(rng, 40, 3, 0.8)

	res, err := Run(xs, ys, xt, treeFactory(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TCLFallback {
		t.Fatalf("expected TCLFallback on single-class pseudo labels (high confidence %d)",
			res.Stats.HighConfidence)
	}
	if res.Stats.HighConfidence < 20 {
		t.Errorf("setup broken: wanted a large single-class confident set, got %d",
			res.Stats.HighConfidence)
	}
	for i := range res.Labels {
		if res.Labels[i] != res.PseudoLabels[i] {
			t.Fatalf("fallback output differs from GEN at %d", i)
		}
	}
}

// TestTCLFallbackOnTinyTarget: a confident but tiny pseudo-labelled set
// (below the minimum TCL training size) must also fall back to GEN.
func TestTCLFallbackOnTinyTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	xs := append(blob(rng, 40, 3, 0.8), blob(rng, 40, 3, 0.2)...)
	ys := make([]int, 80)
	for i := 0; i < 40; i++ {
		ys[i] = 1
	}
	xt := append(blob(rng, 6, 3, 0.8), blob(rng, 5, 3, 0.2)...)

	// Loose SEL thresholds and a small K: with 11 target rows the
	// default 7-NN neighbourhood straddles both clusters and drags
	// sim_l down, which would trip the SEL fallback instead.
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.TC = 0.7
	cfg.TL = 0.5
	res, err := Run(xs, ys, xt, treeFactory(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.TCLFallback {
		t.Fatalf("expected TCLFallback with only %d target rows (high confidence %d)",
			len(xt), res.Stats.HighConfidence)
	}
	if res.Stats.HighConfidence == 0 {
		t.Errorf("setup broken: expected some confident pseudo labels on separable target")
	}
	if res.Stats.SelectedFallback {
		t.Errorf("unexpected SEL fallback; this test targets the TCL branch")
	}
}
