package core

import (
	"math"
	"math/rand"
	"testing"

	"transer/internal/kdtree"
)

// referenceSelect is the direct per-instance implementation of the SEL
// phase, used to validate the duplicate-grouping optimisation in
// selectInstances.
func referenceSelect(xs [][]float64, ys []int, xt [][]float64, cfg Config) []int {
	cfg = cfg.withDefaults()
	sel := newSelector(xs, ys, xt, cfg)
	var out []int
	for i := range xs {
		if sel.accepted(sel.similaritiesFor(i)) {
			out = append(out, i)
		}
	}
	return out
}

// quantizedProblem generates data with many duplicate vectors, the
// regime the grouping optimisation targets.
func quantizedProblem(n, m int, seed int64) (xs [][]float64, ys []int, xt [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	gen := func(count int) ([][]float64, []int) {
		x := make([][]float64, count)
		y := make([]int, count)
		for i := range x {
			label := rng.Intn(2)
			centre := 0.2
			if label == 1 {
				centre = 0.8
			}
			row := make([]float64, m)
			for j := range row {
				v := centre + rng.NormFloat64()*0.1
				// Quantise to a coarse grid to force duplicates.
				v = math.Round(v*5) / 5
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				row[j] = v
			}
			x[i] = row
			y[i] = label
		}
		return x, y
	}
	xs, ys = gen(n)
	xt, _ = gen(n)
	return
}

func TestSelectInstancesMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		xs, ys, xt := quantizedProblem(150, 3, seed)
		for _, cfg := range []Config{
			DefaultConfig(),
			{K: 3, TC: 0.6, TL: 0.7, TP: 0.9, B: 3},
			{K: 7, TC: 0.9, TL: 0.9, TP: 0.9, B: 3, EnableSimV: true, TV: 0.8},
		} {
			got := SelectInstances(xs, ys, xt, cfg)
			want := referenceSelect(xs, ys, xt, cfg)
			if len(got) != len(want) {
				t.Fatalf("seed %d cfg %+v: optimised kept %d, reference kept %d", seed, cfg, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: selection differs at position %d: %d vs %d", seed, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSelectInstancesGroupSharing(t *testing.T) {
	// All duplicates of the same (vector, label) must receive the same
	// decision.
	xs := [][]float64{
		{0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8},
		{0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8},
		{0.2, 0.2}, {0.2, 0.2}, {0.2, 0.2}, {0.2, 0.2},
		{0.2, 0.2}, {0.2, 0.2}, {0.2, 0.2}, {0.2, 0.2},
	}
	ys := []int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	xt := xs // identical target distribution
	sel := SelectInstances(xs, ys, xt, DefaultConfig())
	// With identical domains and pure neighbourhoods everything passes.
	if len(sel) != len(xs) {
		t.Fatalf("expected all %d instances selected, got %d", len(xs), len(sel))
	}
}

func TestNeighbourhoodCovariance(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 0}, {0, 2}, {2, 2}}
	nn := []kdtree.Neighbour{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	cov := neighbourhoodCovariance(pts, nn, 2)
	// Mean (1,1); var per dim = 1; covariance 0.
	if math.Abs(cov[0]-1) > 1e-12 || math.Abs(cov[3]-1) > 1e-12 {
		t.Errorf("diagonal = %v, %v; want 1, 1", cov[0], cov[3])
	}
	if math.Abs(cov[1]) > 1e-12 || math.Abs(cov[2]) > 1e-12 {
		t.Errorf("off-diagonal = %v, %v; want 0", cov[1], cov[2])
	}
}

func TestSimCExcludesSelf(t *testing.T) {
	// A lone mislabelled instance inside an opposite-label cluster must
	// get sim_c = 0: its own label must not count.
	xs := [][]float64{
		{0.5, 0.5}, // the mislabelled one (label 1)
		{0.5, 0.52}, {0.52, 0.5}, {0.48, 0.5}, {0.5, 0.48},
		{0.52, 0.52}, {0.48, 0.48}, {0.52, 0.48},
	}
	ys := []int{1, 0, 0, 0, 0, 0, 0, 0}
	xt := xs
	cfg := DefaultConfig()
	sims := Similarities(xs, ys, xt, cfg)
	if sims[0].SimC != 0 {
		t.Errorf("mislabelled instance sim_c = %v, want 0", sims[0].SimC)
	}
	if sims[1].SimC != 6.0/7.0 {
		t.Errorf("cluster member sim_c = %v, want 6/7", sims[1].SimC)
	}
}

func TestSimLIdenticalDomains(t *testing.T) {
	// When source and target are identical point sets, sim_l should be
	// very high for every instance.
	xs, ys, _ := quantizedProblem(100, 3, 9)
	sims := Similarities(xs, ys, xs, DefaultConfig())
	for i, s := range sims {
		if s.SimL < 0.8 {
			t.Errorf("instance %d sim_l = %v on identical domains", i, s.SimL)
		}
	}
}

func TestDecayConstant(t *testing.T) {
	// Guard the paper's e^{-5x} choice.
	if decayRate != 5.0 {
		t.Errorf("decayRate = %v, want 5 (paper Figure 5 selection)", decayRate)
	}
}
