package core

import (
	"math"
	"testing"

	"transer/internal/kdtree"
	"transer/internal/testkit"
)

// TestSelectInstancesPropEquivalence cross-checks the grouped fast
// path against the naive per-instance reference on testkit-generated
// grid matrices: heavy duplication, labels assigned independently of
// vectors (so identical vectors carry conflicting labels — the
// nastiest tie-breaking regime), and signed zeros. The equivalence
// must hold verbatim in every regime, so no generator opt-ins apply.
func TestSelectInstancesPropEquivalence(t *testing.T) {
	testkit.Run(t, "selector/fast-path-equivalence", 24, func(pt *testkit.T) {
		n := 3*pt.Size + 12
		m := 2 + pt.Rng.Intn(3)
		xs := testkit.GridMatrix(pt.Rng, n, m)
		ys := make([]int, n)
		for i := range ys {
			ys[i] = pt.Rng.Intn(2)
		}
		// Force extra verbatim duplicates without syncing labels: the
		// fast path must agree with the reference even when duplicate
		// vectors disagree on their labels.
		for k := 0; k < n/3; k++ {
			xs[pt.Rng.Intn(n)] = xs[pt.Rng.Intn(n)]
		}
		xt := testkit.GridMatrix(pt.Rng, n/2+8, m)
		cfg := Config{
			K:          []int{3, 5, 7}[pt.Rng.Intn(3)],
			TC:         []float64{0.5, 0.7, 0.9}[pt.Rng.Intn(3)],
			TL:         []float64{0.5, 0.7, 0.9}[pt.Rng.Intn(3)],
			TP:         0.9,
			B:          3,
			EnableSimV: pt.Rng.Intn(2) == 0,
			TV:         0.7,
			Workers:    1 + pt.Rng.Intn(4),
		}
		got := SelectInstances(xs, ys, xt, cfg)
		want := referenceSelect(xs, ys, xt, cfg)
		if !testkit.EqualInts(got, want) {
			pt.Errorf("n=%d m=%d cfg=%+v: fast path kept %v, reference kept %v",
				n, m, cfg, got, want)
		}
	})
}

// TestVectorKeyDistinguishesSignedZero pins the encoding detail the
// grouping relies on: +0.0 and -0.0 are different group keys (they
// have different bit patterns), while equal values always produce
// equal keys. The encoding itself now lives in kdtree.VectorKey; this
// pins the selector's use of it.
func TestVectorKeyDistinguishesSignedZero(t *testing.T) {
	pos := string(kdtree.VectorKey(nil, []float64{0}))
	neg := string(kdtree.VectorKey(nil, []float64{math.Copysign(0, -1)}))
	if pos == neg {
		t.Errorf("+0.0 and -0.0 encode to the same key")
	}
	if a, b := string(kdtree.VectorKey(nil, []float64{0.35})), string(kdtree.VectorKey(nil, []float64{0.35})); a != b {
		t.Errorf("equal values encode to different keys")
	}
	if len(kdtree.VectorKey(nil, []float64{0.35})) != 8 {
		t.Errorf("key must be the fixed 8-byte Float64bits encoding")
	}
}

// TestSelectInstancesSignedZeroGroups: rows identical except for the
// sign of a zero land in different duplicate groups, yet both groups
// must get the decision the reference implementation assigns them.
func TestSelectInstancesSignedZeroGroups(t *testing.T) {
	negZero := math.Copysign(0, -1)
	xs := [][]float64{
		{0, 0.8}, {negZero, 0.8}, {0, 0.8}, {negZero, 0.8},
		{0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8},
	}
	ys := []int{1, 1, 1, 1, 1, 1, 1, 1}
	xt := xs
	cfg := DefaultConfig()
	got := SelectInstances(xs, ys, xt, cfg)
	want := referenceSelect(xs, ys, xt, cfg)
	if !testkit.EqualInts(got, want) {
		t.Fatalf("signed-zero groups: fast path kept %v, reference kept %v", got, want)
	}
}
