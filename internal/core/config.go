// Package core implements TransER (Algorithm 1 of the paper):
// instance selection (SEL), pseudo label generation (GEN), and target
// domain classification (TCL). It consumes only the source feature
// matrix X^S with labels Y^S and the target feature matrix X^T, so it
// applies to any homogeneous-feature-space ER problem regardless of
// how blocking and comparison were performed.
package core

import (
	"fmt"
	"time"

	"transer/internal/ml"
	"transer/internal/obs"
)

// Config holds TransER's hyper-parameters and ablation switches. The
// defaults are the paper's Section 5.1 settings.
type Config struct {
	// K is the neighbourhood size for the local source and target
	// distributions (paper default 7).
	K int
	// TC is the instance confidence similarity threshold t_c
	// (paper default 0.9).
	TC float64
	// TL is the instance structural similarity threshold t_l
	// (paper default 0.9).
	TL float64
	// TP is the pseudo label confidence threshold t_p. The paper's
	// default is 0.99 with scikit-learn's heavily saturated
	// probability outputs; re-running the paper's Section 5.3
	// sensitivity protocol against this repository's better-calibrated
	// classifiers selects 0.90 (see EXPERIMENTS.md), which is the
	// default here.
	TP float64
	// B is the class imbalance ratio b: non-matches per match kept by
	// the TCL under-sampling (paper default 3, i.e. 1:3).
	B float64
	// Seed drives the under-sampling and any stochastic classifier
	// the caller supplies.
	Seed int64
	// Workers bounds the goroutines used by the SEL phase and by GEN/
	// TCL batch prediction; 0 means one per CPU, 1 forces serial
	// execution. Results are identical for every worker count.
	Workers int

	// SELMode selects the SEL nearest-neighbour engine. The empty
	// string and SELModeExact run the default fast path (unique-vector
	// dedup over the flattened k-d tree); SELModeDedup and
	// SELModeReference run the earlier engines. All three produce
	// bitwise-identical selections — the exactness contract of
	// DESIGN.md §10 — and differ only in speed. SELModeApprox trades
	// exactness for LSH-driven candidate search with a bounded effect
	// on the selection (see DESIGN.md §10 for when that is safe).
	SELMode string

	// SELCache, when non-nil, memoizes SEL selections across runs
	// with identical inputs (content-addressed; see SelectionCache).
	// A hit returns bitwise the selection a recompute would produce,
	// so enabling it never changes output — it only removes the
	// duplicate SEL work the experiment grids generate by re-running
	// TransER once per classifier over the same task.
	SELCache *SelectionCache

	// Obs, when non-nil, is the parent span under which Run records
	// its SEL/GEN/TCL phase spans (with classifier fit/predict
	// children) and selection/pseudo-label statistics. Purely
	// observational: results are bitwise identical with or without it.
	Obs *obs.Span

	// Ablation switches (paper Table 4). All false by default.

	// DisableSEL transfers every source instance unfiltered
	// ("without SEL").
	DisableSEL bool
	// DisableGENTCL classifies the target directly with the
	// classifier trained on the selected source instances
	// ("without GEN & TCL").
	DisableGENTCL bool
	// DisableSimC drops the confidence similarity filter from SEL
	// ("without sim_c").
	DisableSimC bool
	// DisableSimL drops the structural similarity filter from SEL
	// ("without sim_l").
	DisableSimL bool
	// EnableSimV adds LocIT's covariance similarity as a third SEL
	// filter ("TransER + sim_v").
	EnableSimV bool
	// TV is the covariance similarity threshold used when EnableSimV
	// is set; 0 means 0.9.
	TV float64
}

// SEL engine modes (Config.SELMode). All exact modes select the same
// instances; they exist so benchmarks can attribute the fast path's
// win per layer and differential tests can cross-check the layers
// against each other.
const (
	// SELModeExact (the default) deduplicates feature vectors and
	// answers instance-level k-NN with one weighted query per unique
	// vector over a flattened k-d tree. Exact: bitwise-identical to
	// SELModeReference.
	SELModeExact = "exact"
	// SELModeDedup deduplicates feature vectors but still queries the
	// original pointer-based per-instance tree — the dedup layer in
	// isolation. Exact.
	SELModeDedup = "dedup"
	// SELModeReference is the original selector: one (k+1)-NN pointer-
	// tree query per distinct (vector, label) group. The baseline the
	// exactness contract is stated against.
	SELModeReference = "reference"
	// SELModeApprox ranks LSH bucket candidates (MinHash over the
	// 0.05-quantized vectors, reusing internal/blocking) instead of
	// searching a tree, falling back to the exact index when buckets
	// run shallow. Approximate: selections may drift within the
	// bounds the metamorphic suite enforces.
	SELModeApprox = "approx"
)

// selMode resolves the effective SEL engine.
func (c Config) selMode() string {
	if c.SELMode == "" {
		return SELModeExact
	}
	return c.SELMode
}

// DefaultConfig returns the default parameters: k=7, t_c=0.9,
// t_l=0.9, t_p=0.90 (see Config.TP for why this differs from the
// paper's 0.99), b=3.
func DefaultConfig() Config {
	return Config{K: 7, TC: 0.9, TL: 0.9, TP: 0.90, B: 3}
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 7
	}
	if c.TV == 0 {
		c.TV = 0.9
	}
	return c
}

// Validate rejects out-of-range parameters.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"TC", c.TC}, {"TL", c.TL}, {"TP", c.TP}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("core: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.B < 0 {
		return fmt.Errorf("core: B must be >= 0, got %v", c.B)
	}
	switch c.SELMode {
	case "", SELModeExact, SELModeDedup, SELModeReference, SELModeApprox:
	default:
		return fmt.Errorf("core: unknown SELMode %q (want %s|%s|%s|%s)",
			c.SELMode, SELModeExact, SELModeDedup, SELModeReference, SELModeApprox)
	}
	return nil
}

// Stats reports what each phase did — selection counts and wall-clock
// per phase (the paper's Table 3 timings decompose this way).
type Stats struct {
	// SourceInstances and TargetInstances are the input sizes.
	SourceInstances, TargetInstances int
	// Selected is |X^U|, the transferred source instances.
	Selected int
	// SelectedFallback is true when SEL filtered out everything and
	// the full source was used instead.
	SelectedFallback bool
	// HighConfidence is |X^V|, the target instances whose pseudo label
	// confidence reached t_p.
	HighConfidence int
	// BalancedTrain is |X^V_b| after under-sampling.
	BalancedTrain int
	// TCLFallback is true when no usable pseudo-labelled training set
	// existed and the GEN predictions were returned directly.
	TCLFallback bool
	// Phase timings.
	SelTime, GenTime, TclTime time.Duration
}

// Result is the output of a TransER run on one source→target task.
type Result struct {
	// Labels are the final target labels Y^T (1 = match).
	Labels []int
	// Proba are the final classifier's match probabilities on X^T.
	Proba []float64
	// PseudoLabels and PseudoConfidence are GEN's intermediate
	// outputs (Y^P and Z^P), retained for diagnostics and ablations.
	PseudoLabels []int
	// PseudoConfidence holds the confidence of each pseudo label.
	PseudoConfidence []float64
	// Classifier is the trained classifier that produced Proba: the
	// TCL-phase target classifier on the normal path, or the GEN-phase
	// classifier when TCL was skipped (TCLFallback, DisableGENTCL).
	// Invariant: Proba equals Classifier.PredictProba on the target
	// matrix, so persisting it (internal/model) preserves the run's
	// decisions exactly.
	Classifier ml.Classifier
	// Stats describes the run.
	Stats Stats
}
