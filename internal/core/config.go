// Package core implements TransER (Algorithm 1 of the paper):
// instance selection (SEL), pseudo label generation (GEN), and target
// domain classification (TCL). It consumes only the source feature
// matrix X^S with labels Y^S and the target feature matrix X^T, so it
// applies to any homogeneous-feature-space ER problem regardless of
// how blocking and comparison were performed.
package core

import (
	"fmt"
	"time"

	"transer/internal/ml"
	"transer/internal/obs"
)

// Config holds TransER's hyper-parameters and ablation switches. The
// defaults are the paper's Section 5.1 settings.
type Config struct {
	// K is the neighbourhood size for the local source and target
	// distributions (paper default 7).
	K int
	// TC is the instance confidence similarity threshold t_c
	// (paper default 0.9).
	TC float64
	// TL is the instance structural similarity threshold t_l
	// (paper default 0.9).
	TL float64
	// TP is the pseudo label confidence threshold t_p. The paper's
	// default is 0.99 with scikit-learn's heavily saturated
	// probability outputs; re-running the paper's Section 5.3
	// sensitivity protocol against this repository's better-calibrated
	// classifiers selects 0.90 (see EXPERIMENTS.md), which is the
	// default here.
	TP float64
	// B is the class imbalance ratio b: non-matches per match kept by
	// the TCL under-sampling (paper default 3, i.e. 1:3).
	B float64
	// Seed drives the under-sampling and any stochastic classifier
	// the caller supplies.
	Seed int64
	// Workers bounds the goroutines used by the SEL phase and by GEN/
	// TCL batch prediction; 0 means one per CPU, 1 forces serial
	// execution. Results are identical for every worker count.
	Workers int

	// Obs, when non-nil, is the parent span under which Run records
	// its SEL/GEN/TCL phase spans (with classifier fit/predict
	// children) and selection/pseudo-label statistics. Purely
	// observational: results are bitwise identical with or without it.
	Obs *obs.Span

	// Ablation switches (paper Table 4). All false by default.

	// DisableSEL transfers every source instance unfiltered
	// ("without SEL").
	DisableSEL bool
	// DisableGENTCL classifies the target directly with the
	// classifier trained on the selected source instances
	// ("without GEN & TCL").
	DisableGENTCL bool
	// DisableSimC drops the confidence similarity filter from SEL
	// ("without sim_c").
	DisableSimC bool
	// DisableSimL drops the structural similarity filter from SEL
	// ("without sim_l").
	DisableSimL bool
	// EnableSimV adds LocIT's covariance similarity as a third SEL
	// filter ("TransER + sim_v").
	EnableSimV bool
	// TV is the covariance similarity threshold used when EnableSimV
	// is set; 0 means 0.9.
	TV float64
}

// DefaultConfig returns the default parameters: k=7, t_c=0.9,
// t_l=0.9, t_p=0.90 (see Config.TP for why this differs from the
// paper's 0.99), b=3.
func DefaultConfig() Config {
	return Config{K: 7, TC: 0.9, TL: 0.9, TP: 0.90, B: 3}
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 7
	}
	if c.TV == 0 {
		c.TV = 0.9
	}
	return c
}

// Validate rejects out-of-range parameters.
func (c Config) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("core: K must be >= 1, got %d", c.K)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"TC", c.TC}, {"TL", c.TL}, {"TP", c.TP}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("core: %s must be in [0,1], got %v", p.name, p.v)
		}
	}
	if c.B < 0 {
		return fmt.Errorf("core: B must be >= 0, got %v", c.B)
	}
	return nil
}

// Stats reports what each phase did — selection counts and wall-clock
// per phase (the paper's Table 3 timings decompose this way).
type Stats struct {
	// SourceInstances and TargetInstances are the input sizes.
	SourceInstances, TargetInstances int
	// Selected is |X^U|, the transferred source instances.
	Selected int
	// SelectedFallback is true when SEL filtered out everything and
	// the full source was used instead.
	SelectedFallback bool
	// HighConfidence is |X^V|, the target instances whose pseudo label
	// confidence reached t_p.
	HighConfidence int
	// BalancedTrain is |X^V_b| after under-sampling.
	BalancedTrain int
	// TCLFallback is true when no usable pseudo-labelled training set
	// existed and the GEN predictions were returned directly.
	TCLFallback bool
	// Phase timings.
	SelTime, GenTime, TclTime time.Duration
}

// Result is the output of a TransER run on one source→target task.
type Result struct {
	// Labels are the final target labels Y^T (1 = match).
	Labels []int
	// Proba are the final classifier's match probabilities on X^T.
	Proba []float64
	// PseudoLabels and PseudoConfidence are GEN's intermediate
	// outputs (Y^P and Z^P), retained for diagnostics and ablations.
	PseudoLabels []int
	// PseudoConfidence holds the confidence of each pseudo label.
	PseudoConfidence []float64
	// Classifier is the trained classifier that produced Proba: the
	// TCL-phase target classifier on the normal path, or the GEN-phase
	// classifier when TCL was skipped (TCLFallback, DisableGENTCL).
	// Invariant: Proba equals Classifier.PredictProba on the target
	// matrix, so persisting it (internal/model) preserves the run's
	// decisions exactly.
	Classifier ml.Classifier
	// Stats describes the run.
	Stats Stats
}
