package core

import (
	"math"
	"math/rand"
	"testing"
)

// randomGridMatrix samples rows from a coarse value grid so exact
// duplicates occur naturally, then injects verbatim duplicate rows and
// flips some zeros to -0.0 (which appendFloatKey must keep distinct
// from +0.0 without changing the selection result — the vectors still
// compare equal in feature space).
func randomGridMatrix(rng *rand.Rand, n, m int) [][]float64 {
	grid := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, m)
		for j := range row {
			v := grid[rng.Intn(len(grid))]
			if v == 0 && rng.Intn(2) == 0 {
				v = math.Copysign(0, -1)
			}
			row[j] = v
		}
		x[i] = row
	}
	// Force duplicate rows: overwrite a third of the matrix with copies
	// of earlier rows (sharing the backing slice, as compare.Matrix
	// never would, is fine — the selector must not mutate features).
	for k := 0; k < n/3; k++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		x[dst] = x[src]
	}
	return x
}

// TestSelectInstancesPropertyEquivalence cross-checks the grouped fast
// path against the naive per-instance reference on randomised inputs
// with heavy duplication, mixed labels on identical vectors, and
// signed zeros. Seeds are fixed so the trials are reproducible.
func TestSelectInstancesPropertyEquivalence(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(90)
		m := 2 + rng.Intn(3)
		xs := randomGridMatrix(rng, n, m)
		ys := make([]int, n)
		for i := range ys {
			ys[i] = rng.Intn(2)
		}
		xt := randomGridMatrix(rng, n/2+10, m)
		cfg := Config{
			K:          []int{3, 5, 7}[rng.Intn(3)],
			TC:         []float64{0.5, 0.7, 0.9}[rng.Intn(3)],
			TL:         []float64{0.5, 0.7, 0.9}[rng.Intn(3)],
			TP:         0.9,
			B:          3,
			EnableSimV: rng.Intn(2) == 0,
			TV:         0.7,
			Workers:    1 + rng.Intn(4),
		}
		got := SelectInstances(xs, ys, xt, cfg)
		want := referenceSelect(xs, ys, xt, cfg)
		if len(got) != len(want) {
			t.Fatalf("seed %d (n=%d m=%d cfg=%+v): fast path kept %d, reference kept %d",
				seed, n, m, cfg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: selection differs at position %d: %d vs %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestAppendFloatKeyDistinguishesSignedZero pins the encoding detail
// the grouping relies on: +0.0 and -0.0 are different group keys (they
// have different bit patterns), while equal values always produce
// equal keys.
func TestAppendFloatKeyDistinguishesSignedZero(t *testing.T) {
	pos := string(appendFloatKey(nil, 0))
	neg := string(appendFloatKey(nil, math.Copysign(0, -1)))
	if pos == neg {
		t.Errorf("+0.0 and -0.0 encode to the same key")
	}
	if a, b := string(appendFloatKey(nil, 0.35)), string(appendFloatKey(nil, 0.35)); a != b {
		t.Errorf("equal values encode to different keys")
	}
	if len(appendFloatKey(nil, 0.35)) != 8 {
		t.Errorf("key must be the fixed 8-byte Float64bits encoding")
	}
}

// TestSelectInstancesSignedZeroGroups: rows identical except for the
// sign of a zero land in different duplicate groups, yet both groups
// must get the decision the reference implementation assigns them.
func TestSelectInstancesSignedZeroGroups(t *testing.T) {
	negZero := math.Copysign(0, -1)
	xs := [][]float64{
		{0, 0.8}, {negZero, 0.8}, {0, 0.8}, {negZero, 0.8},
		{0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8}, {0.8, 0.8},
	}
	ys := []int{1, 1, 1, 1, 1, 1, 1, 1}
	xt := xs
	cfg := DefaultConfig()
	got := SelectInstances(xs, ys, xt, cfg)
	want := referenceSelect(xs, ys, xt, cfg)
	if len(got) != len(want) {
		t.Fatalf("signed-zero groups: fast path kept %d, reference kept %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("signed-zero groups differ at %d: %d vs %d", i, got[i], want[i])
		}
	}
}
