package core_test

// Metamorphic property suite for the TransER framework (SEL/GEN/TCL),
// driven by internal/testkit. Every relation asserted here is exact —
// not approximate — in the generated regime:
//
//   - matrices are continuous, so coordinate ties between distinct
//     rows are measure-zero and KNN neighbour sequences ordered by
//     (distance, id) are invariant under row relabelling;
//   - injected duplicates copy (vector, label) together, so the only
//     ties are between instances that are indistinguishable to every
//     similarity in Eq. 1-2.
//
// Under those two conditions permutation equivariance, duplicate
// consistency and label-corruption monotonicity hold bit-exactly, so
// the assertions below compare with == and never with tolerances.

import (
	"testing"

	"transer/internal/core"
	"transer/internal/ml"
	"transer/internal/ml/tree"
	"transer/internal/testkit"
	"transer/internal/testkit/oracle"
)

func propFactory() ml.Factory { return tree.Factory(tree.Config{Seed: 1}) }

func propConfig() core.Config {
	return core.Config{K: 5, TC: 0.6, TL: 0.6, TP: 0.9, B: 3, Seed: 1}
}

// selCase is a full SEL input for relation-based properties.
type selCase struct {
	xs  [][]float64
	ys  []int
	xt  [][]float64
	cfg core.Config
}

func genSELCase(pt *testkit.T, size int) selCase {
	n := 3*size + 14
	m := 2 + pt.Rng.Intn(3)
	xs := testkit.Matrix(pt.Rng, n, m)
	ys := testkit.BinaryLabels(pt.Rng, n)
	testkit.DuplicateRows(pt.Rng, xs, ys, 0.3)
	xt := testkit.Matrix(pt.Rng, n/2+10, m)
	cfg := propConfig()
	cfg.K = 3 + pt.Rng.Intn(5)
	cfg.EnableSimV = pt.Rng.Intn(4) == 0
	cfg.TV = 0.7
	return selCase{xs: xs, ys: ys, xt: xt, cfg: cfg}
}

// TestSELSourcePermutationEquivariance: permuting the source instances
// permutes the selection — SelectInstances must pick the same set of
// instances, identified through the permutation.
func TestSELSourcePermutationEquivariance(t *testing.T) {
	testkit.Run(t, "core/sel-source-permutation", 12, func(pt *testkit.T) {
		c := genSELCase(pt, pt.Size)
		p := testkit.Perm(pt.Rng, len(c.xs))
		base := core.SelectInstances(c.xs, c.ys, c.xt, c.cfg)
		perm := core.SelectInstances(
			testkit.Permute(p, c.xs), testkit.Permute(p, c.ys), c.xt, c.cfg)
		if !testkit.EqualInts(base, testkit.MapIndices(p, perm)) {
			pt.Errorf("selection not equivariant under source permutation:\nbase %v\nperm %v (as original indices %v)",
				base, perm, testkit.MapIndices(p, perm))
		}
	})
}

// TestSELTargetPermutationInvariance: the selection depends on the
// target only through neighbourhood structure, so reordering target
// rows must not change it at all.
func TestSELTargetPermutationInvariance(t *testing.T) {
	testkit.Run(t, "core/sel-target-permutation", 12, func(pt *testkit.T) {
		c := genSELCase(pt, pt.Size)
		p := testkit.Perm(pt.Rng, len(c.xt))
		base := core.SelectInstances(c.xs, c.ys, c.xt, c.cfg)
		perm := core.SelectInstances(c.xs, c.ys, testkit.Permute(p, c.xt), c.cfg)
		if !testkit.EqualInts(base, perm) {
			pt.Errorf("selection changed under target reordering:\nbase %v\nperm %v", base, perm)
		}
	})
}

// TestSELDuplicateDecisionConsistency: instances with identical
// (vector, label) are indistinguishable to SEL, so they must all be
// selected or all rejected together.
func TestSELDuplicateDecisionConsistency(t *testing.T) {
	testkit.Run(t, "core/sel-duplicate-consistency", 12, func(pt *testkit.T) {
		c := genSELCase(pt, pt.Size)
		kept := make(map[int]bool)
		for _, i := range core.SelectInstances(c.xs, c.ys, c.xt, c.cfg) {
			kept[i] = true
		}
		for i := range c.xs {
			for j := i + 1; j < len(c.xs); j++ {
				if c.ys[i] == c.ys[j] && testkit.RowsEqual(c.xs[i], c.xs[j]) && kept[i] != kept[j] {
					pt.Errorf("duplicate instances %d and %d got different decisions (%v vs %v)",
						i, j, kept[i], kept[j])
					return
				}
			}
		}
	})
}

// TestSimCClassFlipMonotone: flipping the labels of some class-c
// source instances is a label corruption that can only lower the
// confidence similarity sim_c (Eq. 1) of the unflipped class-c
// instances and only raise it for instances of the other class —
// neighbour sets are label-independent, so the effect is one-sided.
func TestSimCClassFlipMonotone(t *testing.T) {
	testkit.Run(t, "core/simc-class-flip-monotone", 12, func(pt *testkit.T) {
		c := genSELCase(pt, pt.Size)
		flipClass := pt.Rng.Intn(2)
		flipped := make(map[int]bool)
		ys2 := append([]int(nil), c.ys...)
		for i := range ys2 {
			if ys2[i] == flipClass && pt.Rng.Intn(3) == 0 {
				ys2[i] = 1 - flipClass
				flipped[i] = true
			}
		}
		before := core.Similarities(c.xs, c.ys, c.xt, c.cfg)
		after := core.Similarities(c.xs, ys2, c.xt, c.cfg)
		for i := range c.xs {
			if flipped[i] {
				continue
			}
			switch {
			case c.ys[i] == flipClass && after[i].SimC > before[i].SimC:
				pt.Errorf("instance %d (class %d): sim_c rose from %v to %v after corrupting its own class",
					i, flipClass, before[i].SimC, after[i].SimC)
				return
			case c.ys[i] != flipClass && after[i].SimC < before[i].SimC:
				pt.Errorf("instance %d (class %d): sim_c fell from %v to %v after corrupting the other class",
					i, 1-flipClass, before[i].SimC, after[i].SimC)
				return
			}
		}
	})
}

// TestRunTargetPermutationEquivariance: with the TCL phase disabled
// the framework output is a per-row prediction of a classifier whose
// training set does not depend on target order, so permuting the
// target rows must permute labels, probabilities and pseudo outputs
// bit-exactly.
func TestRunTargetPermutationEquivariance(t *testing.T) {
	testkit.Run(t, "core/run-target-permutation", 8, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		cfg := propConfig()
		cfg.DisableGENTCL = true
		base, err := core.Run(d.XS, d.YS, d.XT, propFactory(), cfg)
		if err != nil {
			pt.Fatalf("base run: %v", err)
		}
		p := testkit.Perm(pt.Rng, len(d.XT))
		perm, err := core.Run(d.XS, d.YS, testkit.Permute(p, d.XT), propFactory(), cfg)
		if err != nil {
			pt.Fatalf("permuted run: %v", err)
		}
		if !testkit.EqualFloats(perm.Proba, testkit.Permute(p, base.Proba)) ||
			!testkit.EqualInts(perm.Labels, testkit.Permute(p, base.Labels)) {
			pt.Errorf("GEN output is not equivariant under target permutation")
		}
	})
}

// TestPseudoOutputsPermuteWithTarget: even with TCL enabled, the GEN
// phase's pseudo labels and confidences are per-row classifier outputs
// and must permute exactly with the target.
func TestPseudoOutputsPermuteWithTarget(t *testing.T) {
	testkit.Run(t, "core/pseudo-target-permutation", 8, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		cfg := propConfig()
		base, err := core.Run(d.XS, d.YS, d.XT, propFactory(), cfg)
		if err != nil {
			pt.Fatalf("base run: %v", err)
		}
		p := testkit.Perm(pt.Rng, len(d.XT))
		perm, err := core.Run(d.XS, d.YS, testkit.Permute(p, d.XT), propFactory(), cfg)
		if err != nil {
			pt.Fatalf("permuted run: %v", err)
		}
		if !testkit.EqualInts(perm.PseudoLabels, testkit.Permute(p, base.PseudoLabels)) ||
			!testkit.EqualFloats(perm.PseudoConfidence, testkit.Permute(p, base.PseudoConfidence)) {
			pt.Errorf("pseudo outputs are not equivariant under target permutation")
		}
	})
}

// TestTransERBookkeepingOracle runs the differential oracle's full
// bookkeeping check (stats vs outputs, probability and confidence
// bounds, selected/high-confidence counts) on random domains and
// random valid configurations.
func TestTransERBookkeepingOracle(t *testing.T) {
	testkit.Run(t, "core/bookkeeping-oracle", 10, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		oracle.CheckTransER(pt, d, propFactory(), oracle.Config(pt.Rng))
	})
}

// TestSelectionThresholdMonotone: raising t_c and t_l can only shrink
// the selected set.
func TestSelectionThresholdMonotone(t *testing.T) {
	testkit.Run(t, "core/selection-threshold-monotone", 10, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		loose := oracle.Config(pt.Rng)
		strict := loose
		strict.TC = loose.TC + pt.Rng.Float64()*(1-loose.TC)
		strict.TL = loose.TL + pt.Rng.Float64()*(1-loose.TL)
		oracle.CheckSelectionMonotone(pt, d, loose, strict)
	})
}

// TestPseudoLabelThresholdSweep: the number of high-confidence pseudo
// labels is non-increasing in t_p, because GEN itself is independent
// of the threshold.
func TestPseudoLabelThresholdSweep(t *testing.T) {
	testkit.Run(t, "core/pseudo-label-sweep", 6, func(pt *testkit.T) {
		d := testkit.NewDomain(pt.Rng, pt.Size)
		cfg := propConfig()
		oracle.CheckPseudoLabelSweep(pt, d, propFactory(), cfg,
			[]float64{0.5, 0.7, 0.9, 0.95, 0.99})
	})
}
