package core

import (
	"errors"
	"fmt"
	"sort"

	"transer/internal/ml"
	"transer/internal/sampling"
)

// This file implements the extensions the paper lists as future work
// (Section 6): choosing the best source domain when several labelled
// candidates exist, exploiting partially labelled target domains, and
// integrating active learning. Each builds on the same SEL/GEN/TCL
// machinery as the base algorithm.

// Source is one labelled candidate source domain.
type Source struct {
	// Name identifies the source in rankings.
	Name string
	// X and Y are its feature matrix and labels.
	X [][]float64
	Y []int
}

// SourceScore ranks one candidate source's transferability to a
// target.
type SourceScore struct {
	// Index into the candidate slice, Name copied from it.
	Index int
	Name  string
	// MeanSimC and MeanSimL are the average SEL similarities over the
	// source's instances against the target.
	MeanSimC float64
	MeanSimL float64
	// SelectedFrac is the fraction of instances SEL would transfer.
	SelectedFrac float64
	// Score is the ranking key: the selected fraction weighted by the
	// mean structural similarity — a source is only useful if a large,
	// structurally compatible, confidently labelled subset survives
	// selection.
	Score float64
}

// RankSources scores every candidate source domain against the target
// feature matrix and returns them ordered best-first. It addresses the
// paper's "how to choose the best source domain when multiple
// semantically related labelled data sets are available" question with
// the framework's own transferability signals.
func RankSources(sources []Source, xt [][]float64, cfg Config) ([]SourceScore, error) {
	if len(sources) == 0 {
		return nil, errors.New("core: no candidate sources")
	}
	if len(xt) == 0 {
		return nil, errors.New("core: empty target feature matrix")
	}
	cfg = cfg.withDefaults()
	out := make([]SourceScore, 0, len(sources))
	for idx, s := range sources {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return nil, fmt.Errorf("core: source %d (%s) has %d rows and %d labels", idx, s.Name, len(s.X), len(s.Y))
		}
		if len(s.X[0]) != len(xt[0]) {
			return nil, fmt.Errorf("core: source %d (%s) has %d features, target has %d", idx, s.Name, len(s.X[0]), len(xt[0]))
		}
		sims := Similarities(s.X, s.Y, xt, cfg)
		sc := SourceScore{Index: idx, Name: s.Name}
		kept := 0
		sel := newSelector(s.X, s.Y, xt, cfg)
		for _, sim := range sims {
			sc.MeanSimC += sim.SimC
			sc.MeanSimL += sim.SimL
			if sel.accepted(sim) {
				kept++
			}
		}
		n := float64(len(sims))
		sc.MeanSimC /= n
		sc.MeanSimL /= n
		sc.SelectedFrac = float64(kept) / n
		sc.Score = sc.SelectedFrac * sc.MeanSimL
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}

// RunMultiSource ranks the candidate sources and runs TransER from the
// best one, returning the result together with the full ranking.
func RunMultiSource(sources []Source, xt [][]float64, factory ml.Factory, cfg Config) (*Result, []SourceScore, error) {
	ranking, err := RankSources(sources, xt, cfg)
	if err != nil {
		return nil, nil, err
	}
	best := sources[ranking[0].Index]
	res, err := Run(best.X, best.Y, xt, factory, cfg)
	if err != nil {
		return nil, ranking, err
	}
	return res, ranking, nil
}

// TargetLabels maps target instance indices to known true labels —
// the partially labelled target scenario of the paper's future work.
type TargetLabels map[int]int

// RunSemiSupervised runs TransER with a partially labelled target:
// known target labels are injected into the TCL training set with
// full confidence (replacing their pseudo labels), so the final
// classifier is anchored by ground truth where it exists while still
// generalising from pseudo labels elsewhere.
func RunSemiSupervised(xs [][]float64, ys []int, xt [][]float64, known TargetLabels, factory ml.Factory, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	for idx, l := range known {
		if idx < 0 || idx >= len(xt) {
			return nil, fmt.Errorf("core: known target index %d out of range", idx)
		}
		if l != 0 && l != 1 {
			return nil, fmt.Errorf("core: known target label %d at %d is not binary", l, idx)
		}
	}
	// Base run provides SEL + GEN outputs.
	base, err := Run(xs, ys, xt, factory, cfg)
	if err != nil {
		return nil, err
	}
	if len(known) == 0 || cfg.DisableGENTCL {
		return base, nil
	}
	// Rebuild the TCL training set: high-confidence pseudo labels plus
	// all known labels (which win conflicts).
	var xv [][]float64
	var yv []int
	for i := range xt {
		if l, ok := known[i]; ok {
			xv = append(xv, xt[i])
			yv = append(yv, l)
			continue
		}
		if base.PseudoConfidence[i] >= cfg.TP {
			xv = append(xv, xt[i])
			yv = append(yv, base.PseudoLabels[i])
		}
	}
	if len(xv) == 0 || allSame(yv) {
		return base, nil
	}
	xvb, yvb := sampling.UnderSample(xv, yv, cfg.B, cfg.Seed)
	cv, err := ml.FitWithFallback(factory, xvb, yvb)
	if err != nil {
		return nil, fmt.Errorf("core: semi-supervised TCL training failed: %w", err)
	}
	proba := cv.PredictProba(xt)
	out := *base
	out.Proba = proba
	out.Labels = ml.Labels(proba, 0.5)
	out.Stats.HighConfidence = len(xv)
	out.Stats.BalancedTrain = len(xvb)
	// Known labels override predictions on their own instances.
	for idx, l := range known {
		out.Labels[idx] = l
		if l == 1 {
			out.Proba[idx] = 1
		} else {
			out.Proba[idx] = 0
		}
	}
	return &out, nil
}

// Oracle answers label queries for target instances (1 = match). In
// experiments it is backed by ground truth; in production it is a
// human annotator.
type Oracle func(targetIndex int) int

// ActiveResult is the outcome of an active learning run.
type ActiveResult struct {
	*Result
	// Queried lists the target indices sent to the oracle, in order.
	Queried []int
}

// RunActive integrates TransER with uncertainty-sampling active
// learning (the paper's fourth future-work direction): across rounds,
// the most uncertain target instances (pseudo label confidence closest
// to 0.5) are labelled by the oracle and folded into a semi-supervised
// re-run. budget caps the total number of oracle queries.
func RunActive(xs [][]float64, ys []int, xt [][]float64, factory ml.Factory, cfg Config, oracle Oracle, budget, rounds int) (*ActiveResult, error) {
	if oracle == nil {
		return nil, errors.New("core: nil oracle")
	}
	if budget <= 0 {
		return nil, errors.New("core: non-positive query budget")
	}
	if rounds <= 0 {
		rounds = 1
	}
	known := TargetLabels{}
	var queried []int
	perRound := (budget + rounds - 1) / rounds
	var res *Result
	var err error
	for r := 0; r < rounds && len(queried) < budget; r++ {
		res, err = RunSemiSupervised(xs, ys, xt, known, factory, cfg)
		if err != nil {
			return nil, err
		}
		// Pick the most uncertain unlabelled instances.
		type cand struct {
			idx  int
			conf float64
		}
		cands := make([]cand, 0, len(xt))
		for i, z := range res.PseudoConfidence {
			if _, ok := known[i]; ok {
				continue
			}
			cands = append(cands, cand{i, z})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].conf != cands[b].conf {
				return cands[a].conf < cands[b].conf
			}
			return cands[a].idx < cands[b].idx
		})
		take := perRound
		if rem := budget - len(queried); take > rem {
			take = rem
		}
		if take > len(cands) {
			take = len(cands)
		}
		for _, c := range cands[:take] {
			known[c.idx] = oracle(c.idx)
			queried = append(queried, c.idx)
		}
	}
	// Final run with all acquired labels.
	res, err = RunSemiSupervised(xs, ys, xt, known, factory, cfg)
	if err != nil {
		return nil, err
	}
	return &ActiveResult{Result: res, Queried: queried}, nil
}
