package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"
)

// SelectionCache memoizes SEL-phase selections across runs that share
// identical inputs. The selection is a pure function of (xs, ys, xt,
// selection-relevant config), yet the experiment grids recompute it
// once per classifier cell — the same task matrices flow through
// TransER for every classifier, making the grid itself the heaviest
// source of duplicate SEL work. Entries are content-addressed
// (SHA-256 over the matrices, labels and config), mirroring the
// pipeline artifact store's philosophy (DESIGN.md §6): a hit returns
// bitwise the selection a recompute would produce, so cached and
// uncached runs render identical output.
//
// The cache is opt-in via Config.SELCache and safe for concurrent
// use. The reference SEL engine is never wired to one by the
// experiments layer — it reproduces the seed implementation's
// behavior verbatim, recomputation included (DESIGN.md §10).
type SelectionCache struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte][]int
}

// NewSelectionCache returns an empty selection cache.
func NewSelectionCache() *SelectionCache {
	return &SelectionCache{m: make(map[[sha256.Size]byte][]int)}
}

// Len reports the number of distinct selections stored.
func (c *SelectionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// get returns a copy of the cached selection for key, if any. Copies
// isolate callers from each other: the selection flows into index
// arithmetic downstream and must never alias a shared slice.
func (c *SelectionCache) get(key [sha256.Size]byte) ([]int, bool) {
	c.mu.Lock()
	sel, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	out := make([]int, len(sel))
	copy(out, sel)
	return out, true
}

// put stores a private copy of sel under key. Concurrent misses on
// the same key both compute and both store; the results are identical
// by determinism, so last-write-wins is benign.
func (c *SelectionCache) put(key [sha256.Size]byte, sel []int) {
	own := make([]int, len(sel))
	copy(own, sel)
	c.mu.Lock()
	c.m[key] = own
	c.mu.Unlock()
}

// selKey fingerprints a SelectInstances call: every input bit and
// every config field the selection depends on. Workers is excluded
// (the selection is worker-count-invariant, a tested guarantee) and
// Obs/SELCache are excluded (pure observers). Lengths prefix each
// section so structure is unambiguous; floats hash as IEEE bits, so
// +0.0 and -0.0 — distinct groups in the selector — key differently
// too.
func selKey(xs [][]float64, ys []int, xt [][]float64, cfg Config) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wFloat := func(v float64) { wInt(int64(math.Float64bits(v))) }
	wRows := func(rows [][]float64) {
		wInt(int64(len(rows)))
		for _, row := range rows {
			wInt(int64(len(row)))
			for _, v := range row {
				wFloat(v)
			}
		}
	}
	wRows(xs)
	wInt(int64(len(ys)))
	for _, y := range ys {
		wInt(int64(y))
	}
	wRows(xt)
	wInt(int64(cfg.K))
	wFloat(cfg.TC)
	wFloat(cfg.TL)
	wFloat(cfg.TV)
	flags := int64(0)
	if cfg.EnableSimV {
		flags |= 1
	}
	if cfg.DisableSimC {
		flags |= 2
	}
	if cfg.DisableSimL {
		flags |= 4
	}
	wInt(flags)
	wInt(cfg.Seed)
	h.Write([]byte(cfg.selMode()))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}
