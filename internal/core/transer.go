package core

import (
	"errors"
	"fmt"
	"time"

	"transer/internal/ml"
	"transer/internal/sampling"
)

// Run executes TransER on one source→target task.
//
// Inputs are the source feature matrix xs with labels ys, the target
// feature matrix xt, a classifier factory (fresh instances are trained
// in the GEN and TCL phases), and the configuration. It returns the
// final target labels with probabilities and per-phase statistics.
func Run(xs [][]float64, ys []int, xt [][]float64, factory ml.Factory, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(xs) == 0 {
		return nil, errors.New("core: empty source feature matrix")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("core: %d source rows but %d labels", len(xs), len(ys))
	}
	if len(xt) == 0 {
		return nil, errors.New("core: empty target feature matrix")
	}
	m := len(xs[0])
	for i, row := range xt {
		if len(row) != m {
			return nil, fmt.Errorf("core: target row %d has %d features, source has %d (feature spaces must be homogeneous)", i, len(row), m)
		}
	}
	if factory == nil {
		return nil, errors.New("core: nil classifier factory")
	}

	res := &Result{Stats: Stats{
		SourceInstances: len(xs),
		TargetInstances: len(xt),
	}}
	cfg.Obs.SetInt("source_instances", int64(len(xs)))
	cfg.Obs.SetInt("target_instances", int64(len(xt)))

	// Phase (i): instance selector — lines 1-9 of Algorithm 1. The
	// selector records its sel_dedup/sel_build/sel_query sub-phases,
	// which must nest under the sel span, so it runs with a config
	// whose Obs handle is the sel span itself.
	selSpan := cfg.Obs.Child("sel")
	selStart := time.Now()
	selCfg := cfg
	selCfg.Obs = selSpan
	selected := SelectInstances(xs, ys, xt, selCfg)
	if len(selected) == 0 || singleClass(ys, selected) {
		// Degenerate selection: fall back to the full source so a
		// classifier can still be trained. The paper's data never
		// triggers this; extreme thresholds (t_c = t_l = 1.0) can.
		selected = selected[:0]
		for i := range xs {
			selected = append(selected, i)
		}
		res.Stats.SelectedFallback = true
	}
	xu := make([][]float64, len(selected))
	yu := make([]int, len(selected))
	for i, idx := range selected {
		xu[i] = xs[idx]
		yu[i] = ys[idx]
	}
	res.Stats.Selected = len(xu)
	res.Stats.SelTime = time.Since(selStart)
	selSpan.SetInt("selected", int64(res.Stats.Selected))
	selSpan.SetBool("fallback", res.Stats.SelectedFallback)
	selSpan.End()

	// Phase (ii): pseudo label generator — lines 10-11.
	genSpan := cfg.Obs.Child("gen")
	genStart := time.Now()
	fitSpan := genSpan.Child("fit")
	cu, err := ml.FitWithFallback(factory, xu, yu)
	fitSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: GEN training failed: %w", err)
	}
	predictSpan := genSpan.Child("predict")
	proba := ml.ParallelProba(cu, xt, cfg.Workers)
	predictSpan.End()
	res.PseudoLabels = ml.Labels(proba, 0.5)
	res.PseudoConfidence = make([]float64, len(proba))
	for i, p := range proba {
		res.PseudoConfidence[i] = ml.Confidence(p)
	}
	res.Stats.GenTime = time.Since(genStart)
	genSpan.SetInt("pseudo_labels", int64(len(res.PseudoLabels)))
	genSpan.End()

	if cfg.DisableGENTCL {
		// Ablation "without GEN & TCL": classify the target directly
		// with the classifier trained on the transferred instances.
		res.Labels = ml.Labels(proba, 0.5)
		res.Proba = proba
		res.Classifier = cu
		return res, nil
	}

	// Phase (iii): target domain classifier — lines 12-20.
	tclSpan := cfg.Obs.Child("tcl")
	tclStart := time.Now()
	var xv [][]float64
	var yv []int
	for i, z := range res.PseudoConfidence {
		if z >= cfg.TP {
			xv = append(xv, xt[i])
			yv = append(yv, res.PseudoLabels[i])
		}
	}
	res.Stats.HighConfidence = len(xv)
	tclSpan.SetInt("pseudo_kept", int64(len(xv)))

	// A usable TCL training set needs both classes and enough rows for
	// the classifier to generalise; otherwise GEN's predictions are the
	// better answer.
	const minTCLTrain = 20
	xvb, yvb := sampling.UnderSample(xv, yv, cfg.B, cfg.Seed)
	if len(xvb) < minTCLTrain || allSame(yvb) {
		// No usable pseudo-labelled training set: return GEN's
		// predictions directly rather than failing the task.
		res.Labels = ml.Labels(proba, 0.5)
		res.Proba = proba
		res.Classifier = cu
		res.Stats.TCLFallback = true
		res.Stats.TclTime = time.Since(tclStart)
		tclSpan.SetBool("fallback", true)
		tclSpan.End()
		return res, nil
	}

	res.Stats.BalancedTrain = len(xvb)
	tclSpan.SetInt("balanced_train", int64(len(xvb)))
	fitSpan = tclSpan.Child("fit")
	cv, err := ml.FitWithFallback(factory, xvb, yvb)
	fitSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: TCL training failed: %w", err)
	}
	predictSpan = tclSpan.Child("predict")
	finalProba := ml.ParallelProba(cv, xt, cfg.Workers)
	predictSpan.End()
	res.Labels = ml.Labels(finalProba, 0.5)
	res.Proba = finalProba
	res.Classifier = cv
	res.Stats.TclTime = time.Since(tclStart)
	tclSpan.End()
	return res, nil
}

func singleClass(ys []int, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := ys[idx[0]]
	for _, i := range idx[1:] {
		if ys[i] != first {
			return false
		}
	}
	return true
}

func allSame(y []int) bool {
	if len(y) == 0 {
		return true
	}
	for _, v := range y[1:] {
		if v != y[0] {
			return false
		}
	}
	return true
}
