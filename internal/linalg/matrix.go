// Package linalg implements the dense linear algebra needed by the
// feature-based transfer learning baselines (TCA and CORAL): matrix
// arithmetic, covariance estimation, Cholesky and LU factorisations,
// and a cyclic Jacobi eigensolver for symmetric matrices, from which
// matrix inverse and fractional powers (square roots) are derived.
//
// Matrices are small (the ER feature space has 4-11 dimensions, and
// TCA kernels are built on subsampled instance sets), so clarity is
// favoured over blocked/vectorised kernels.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must have equal
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			ok := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j := range oi {
				oi[j] += a * ok[j]
			}
		}
	}
	return out
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.mustSameShape(other)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.mustSameShape(other)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= other.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbsOffDiag returns the largest |a_ij| for i != j of a square
// matrix; used as the Jacobi convergence criterion.
func (m *Matrix) MaxAbsOffDiag() float64 {
	best := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > best {
				best = a
			}
		}
	}
	return best
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

func (m *Matrix) mustSquare() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: matrix %dx%d is not square", m.Rows, m.Cols))
	}
}

// Mean returns the column means of m.
func (m *Matrix) Mean() []float64 {
	mu := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mu
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(m.Rows)
	}
	return mu
}

// Covariance returns the (biased, 1/n) covariance matrix of the rows of
// m, with an optional ridge term added to the diagonal for numerical
// stability. A zero-row matrix yields ridge * I.
func Covariance(m *Matrix, ridge float64) *Matrix {
	d := m.Cols
	cov := NewMatrix(d, d)
	if m.Rows > 0 {
		mu := m.Mean()
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for a := 0; a < d; a++ {
				da := row[a] - mu[a]
				if da == 0 {
					continue
				}
				for b := a; b < d; b++ {
					cov.Data[a*d+b] += da * (row[b] - mu[b])
				}
			}
		}
		inv := 1 / float64(m.Rows)
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				v := cov.Data[a*d+b] * inv
				cov.Data[a*d+b] = v
				cov.Data[b*d+a] = v
			}
		}
	}
	for a := 0; a < d; a++ {
		cov.Data[a*d+a] += ridge
	}
	return cov
}

// ErrSingular is returned when a factorisation or solve meets a
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Cholesky computes the lower-triangular L with A = L Lᵀ for a
// symmetric positive definite A. It returns ErrSingular if A is not
// positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	a.mustSquare()
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// LUSolve solves A x = b by Gaussian elimination with partial
// pivoting. A and b are not modified.
func LUSolve(a *Matrix, b []float64) ([]float64, error) {
	a.mustSquare()
	n := a.Rows
	if len(b) != n {
		panic("linalg: rhs length mismatch")
	}
	// Augmented working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		pivot := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pivot
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// ForwardSolveMatrix solves L X = B for a lower-triangular L with
// non-zero diagonal, column by column in O(n²) per column.
func ForwardSolveMatrix(l, b *Matrix) (*Matrix, error) {
	l.mustSquare()
	n := l.Rows
	if b.Rows != n {
		panic("linalg: rhs row count mismatch")
	}
	x := NewMatrix(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := 0; i < n; i++ {
			s := b.At(i, c)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x.At(k, c)
			}
			d := l.At(i, i)
			if math.Abs(d) < 1e-14 {
				return nil, ErrSingular
			}
			x.Set(i, c, s/d)
		}
	}
	return x, nil
}

// BackSolveMatrix solves U X = B for an upper-triangular U with
// non-zero diagonal.
func BackSolveMatrix(u, b *Matrix) (*Matrix, error) {
	u.mustSquare()
	n := u.Rows
	if b.Rows != n {
		panic("linalg: rhs row count mismatch")
	}
	x := NewMatrix(n, b.Cols)
	for c := 0; c < b.Cols; c++ {
		for i := n - 1; i >= 0; i-- {
			s := b.At(i, c)
			for k := i + 1; k < n; k++ {
				s -= u.At(i, k) * x.At(k, c)
			}
			d := u.At(i, i)
			if math.Abs(d) < 1e-14 {
				return nil, ErrSingular
			}
			x.Set(i, c, s/d)
		}
	}
	return x, nil
}

// Inverse returns A⁻¹ via column-wise LU solves.
func Inverse(a *Matrix) (*Matrix, error) {
	a.mustSquare()
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		col, err := LUSolve(a, e)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			inv.Set(r, c, col[r])
		}
	}
	return inv, nil
}
