package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMatrixBasicOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})

	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if c.Sub(want).FrobeniusNorm() > 1e-12 {
		t.Errorf("Mul wrong: %v", c.Data)
	}

	s := a.Add(b)
	if s.At(0, 0) != 6 || s.At(1, 1) != 12 {
		t.Errorf("Add wrong: %v", s.Data)
	}

	d := a.T()
	if d.At(0, 1) != 3 || d.At(1, 0) != 2 {
		t.Errorf("T wrong: %v", d.Data)
	}

	sc := a.Scale(2)
	if sc.At(1, 1) != 8 {
		t.Errorf("Scale wrong")
	}

	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec wrong: %v", v)
	}
}

func TestIdentityAndClone(t *testing.T) {
	i3 := Identity(3)
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if a.Mul(i3).Sub(a).FrobeniusNorm() > 1e-12 {
		t.Errorf("A*I != A")
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Errorf("Clone should not share storage")
	}
}

func TestMean(t *testing.T) {
	a := FromRows([][]float64{{1, 10}, {3, 20}})
	mu := a.Mean()
	if mu[0] != 2 || mu[1] != 15 {
		t.Errorf("Mean = %v", mu)
	}
	empty := NewMatrix(0, 3)
	mu = empty.Mean()
	for _, v := range mu {
		if v != 0 {
			t.Errorf("empty mean should be zeros")
		}
	}
}

func TestCovariance(t *testing.T) {
	// Two perfectly correlated columns.
	a := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := Covariance(a, 0)
	// var(x) = 2/3, var(y) = 8/3, cov = 4/3 with 1/n normalisation
	if !approxEq(cov.At(0, 0), 2.0/3.0, 1e-9) {
		t.Errorf("var(x) = %v", cov.At(0, 0))
	}
	if !approxEq(cov.At(1, 1), 8.0/3.0, 1e-9) {
		t.Errorf("var(y) = %v", cov.At(1, 1))
	}
	if !approxEq(cov.At(0, 1), 4.0/3.0, 1e-9) || !approxEq(cov.At(1, 0), 4.0/3.0, 1e-9) {
		t.Errorf("cov(x,y) = %v / %v", cov.At(0, 1), cov.At(1, 0))
	}
	// Ridge lands on the diagonal only.
	covR := Covariance(a, 0.5)
	if !approxEq(covR.At(0, 0), 2.0/3.0+0.5, 1e-9) || !approxEq(covR.At(0, 1), 4.0/3.0, 1e-9) {
		t.Errorf("ridge misapplied")
	}
	// Degenerate: no rows.
	covE := Covariance(NewMatrix(0, 2), 1)
	if covE.At(0, 0) != 1 || covE.At(1, 1) != 1 || covE.At(0, 1) != 0 {
		t.Errorf("empty covariance should be ridge*I")
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky failed: %v", err)
	}
	rec := l.Mul(l.T())
	if rec.Sub(a).FrobeniusNorm() > 1e-9 {
		t.Errorf("L*Lt != A: %v", rec.Data)
	}
	// Not positive definite.
	bad := FromRows([][]float64{{0, 1}, {1, 0}})
	if _, err := Cholesky(bad); err == nil {
		t.Errorf("expected ErrSingular for indefinite matrix")
	}
}

func TestLUSolveAndInverse(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := LUSolve(a, b)
	if err != nil {
		t.Fatalf("LUSolve failed: %v", err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !approxEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse failed: %v", err)
	}
	if a.Mul(inv).Sub(Identity(3)).FrobeniusNorm() > 1e-9 {
		t.Errorf("A * A^-1 != I")
	}
	// Singular matrix rejected.
	sing := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := LUSolve(sing, []float64{1, 1}); err == nil {
		t.Errorf("expected error on singular solve")
	}
	if _, err := Inverse(sing); err == nil {
		t.Errorf("expected error on singular inverse")
	}
}

func TestEigenSymKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(a)
	if !approxEq(vals[0], 3, 1e-9) || !approxEq(vals[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2 up to sign.
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	if !approxEq(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) || !approxEq(math.Abs(v0[1]), 1/math.Sqrt2, 1e-9) {
		t.Errorf("first eigenvector = %v", v0)
	}
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs := EigenSym(NewMatrix(0, 0))
	if len(vals) != 0 || vecs.Rows != 0 {
		t.Errorf("empty matrix should yield empty eigensystem")
	}
}

func TestEigenReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, q := EigenSym(a)
		// Reconstruct A = Q diag Qt.
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := q.Mul(d).Mul(q.T())
		if rec.Sub(a).FrobeniusNorm() > 1e-8*float64(n) {
			t.Fatalf("trial %d: reconstruction error %v", trial, rec.Sub(a).FrobeniusNorm())
		}
		// Q orthonormal.
		if q.T().Mul(q).Sub(Identity(n)).FrobeniusNorm() > 1e-8*float64(n) {
			t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("trial %d: eigenvalues not sorted: %v", trial, vals)
			}
		}
	}
}

func TestSymPowSquareRoot(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	r := SymPow(a, 0.5, 1e-12)
	if !approxEq(r.At(0, 0), 2, 1e-9) || !approxEq(r.At(1, 1), 3, 1e-9) {
		t.Errorf("sqrt = %v", r.Data)
	}
	// General SPD: sqrt(A)*sqrt(A) == A.
	b := FromRows([][]float64{{2, 1}, {1, 2}})
	rb := SymPow(b, 0.5, 1e-12)
	if rb.Mul(rb).Sub(b).FrobeniusNorm() > 1e-9 {
		t.Errorf("sqrt(B)^2 != B")
	}
	// Inverse square root composes with square root to identity.
	ib := SymPow(b, -0.5, 1e-12)
	if ib.Mul(rb).Sub(Identity(2)).FrobeniusNorm() > 1e-9 {
		t.Errorf("B^-1/2 * B^1/2 != I")
	}
}

func TestSymPowClampsTinyEigenvalues(t *testing.T) {
	// Rank-deficient covariance still yields a finite inverse sqrt.
	a := FromRows([][]float64{{1, 1}, {1, 1}}) // eigenvalues 2, 0
	r := SymPow(a, -0.5, 1e-6)
	for _, v := range r.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("SymPow produced non-finite output: %v", r.Data)
		}
	}
}

func TestTopEigenvectors(t *testing.T) {
	a := FromRows([][]float64{{5, 0, 0}, {0, 3, 0}, {0, 0, 1}})
	vals, vecs := TopEigenvectors(a, 2)
	if len(vals) != 2 || vals[0] != 5 || vals[1] != 3 {
		t.Errorf("top eigenvalues = %v", vals)
	}
	if vecs.Cols != 2 || vecs.Rows != 3 {
		t.Errorf("vector shape = %dx%d", vecs.Rows, vecs.Cols)
	}
	// Requesting more than n clamps.
	vals, _ = TopEigenvectors(a, 10)
	if len(vals) != 3 {
		t.Errorf("clamped eigenvalue count = %d", len(vals))
	}
}

func TestPropertyLUSolveRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// Diagonally dominant => nonsingular.
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.NormFloat64()
					a.Set(i, j, v)
					sum += math.Abs(v)
				}
			}
			a.Set(i, i, sum+1+rng.Float64())
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := LUSolve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !approxEq(got[i], x[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("LUSolve round-trip failed: %v", err)
	}
}

func TestPropertyCovariancePSD(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		d := 1 + rng.Intn(6)
		m := NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		cov := Covariance(m, 0)
		vals, _ := EigenSym(cov)
		for _, v := range vals {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("covariance not PSD: %v", err)
	}
}

func BenchmarkEigenSym8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	a := NewMatrix(n, n)
	c := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		c.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mul(c)
	}
}
