package linalg

import (
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi rotation method. Eigenpairs are
// returned sorted by descending eigenvalue; column j of the returned
// vectors matrix is the eigenvector of values[j]. The input is not
// modified.
//
// The Jacobi method is quadratically convergent and unconditionally
// stable for symmetric input, which covers every use in this
// repository (covariances and the symmetric TCA system after
// symmetrisation).
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	a.mustSquare()
	n := a.Rows
	if n == 0 {
		return nil, NewMatrix(0, 0)
	}
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := m.MaxAbsOffDiag()
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				// Compute the Jacobi rotation that zeroes a_pq.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{m.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for j, p := range pairs {
		values[j] = p.val
		for i := 0; i < n; i++ {
			vectors.Set(i, j, v.At(i, p.idx))
		}
	}
	return values, vectors
}

// SymPow returns Aᵖ for a symmetric positive semi-definite A computed
// through its eigendecomposition: Q diag(λᵖ) Qᵀ. Eigenvalues below eps
// are clamped to eps before the power is applied, which makes negative
// powers (inverse square roots) well defined on rank-deficient
// covariances.
func SymPow(a *Matrix, p, eps float64) *Matrix {
	vals, q := EigenSym(a)
	n := a.Rows
	d := NewMatrix(n, n)
	for i, v := range vals {
		if v < eps {
			v = eps
		}
		d.Set(i, i, math.Pow(v, p))
	}
	return q.Mul(d).Mul(q.T())
}

// TopEigenvectors returns the k eigenvectors (as matrix columns) with
// the largest eigenvalues of the symmetric matrix a, together with the
// eigenvalues.
func TopEigenvectors(a *Matrix, k int) ([]float64, *Matrix) {
	vals, vecs := EigenSym(a)
	if k > len(vals) {
		k = len(vals)
	}
	out := NewMatrix(a.Rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < a.Rows; i++ {
			out.Set(i, j, vecs.At(i, j))
		}
	}
	return vals[:k], out
}
