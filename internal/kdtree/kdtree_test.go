package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("empty tree Len = %d", tr.Len())
	}
	if nn := tr.KNN([]float64{0.5}, 3, nil); nn != nil {
		t.Errorf("empty tree KNN should return nil, got %v", nn)
	}
}

func TestSinglePoint(t *testing.T) {
	tr := Build([][]float64{{0.25, 0.75}})
	nn := tr.KNN([]float64{0, 0}, 1, nil)
	if len(nn) != 1 || nn[0].ID != 0 {
		t.Fatalf("KNN = %v", nn)
	}
	want := 0.25*0.25 + 0.75*0.75
	if math.Abs(nn[0].Dist2-want) > 1e-12 {
		t.Errorf("Dist2 = %v, want %v", nn[0].Dist2, want)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 7, 50, 200} {
		for _, d := range []int{1, 2, 4, 8} {
			pts := randomPoints(rng, n, d)
			tr := Build(pts)
			for trial := 0; trial < 10; trial++ {
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.Float64()
				}
				for _, k := range []int{1, 3, n, n + 5} {
					got := tr.KNN(q, k, nil)
					want := BruteKNN(pts, q, k, nil)
					if len(got) != len(want) {
						t.Fatalf("n=%d d=%d k=%d: got %d results, want %d", n, d, k, len(got), len(want))
					}
					for i := range got {
						if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
							t.Fatalf("n=%d d=%d k=%d result %d: got dist %v want %v", n, d, k, i, got[i].Dist2, want[i].Dist2)
						}
					}
				}
			}
		}
	}
}

func TestKNNExclude(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	tr := Build(pts)
	// Exclude the exact query point (id 0).
	nn := tr.KNN([]float64{0, 0}, 2, func(id int) bool { return id == 0 })
	if len(nn) != 2 || nn[0].ID != 1 || nn[1].ID != 2 {
		t.Errorf("exclusion failed: %v", nn)
	}
	// Exclude everything.
	nn = tr.KNN([]float64{0, 0}, 2, func(id int) bool { return true })
	if len(nn) != 0 {
		t.Errorf("excluding all should yield empty, got %v", nn)
	}
}

func TestKNNZeroK(t *testing.T) {
	tr := Build([][]float64{{1}, {2}})
	if nn := tr.KNN([]float64{1.5}, 0, nil); nn != nil {
		t.Errorf("k=0 should return nil")
	}
	if nn := tr.KNN([]float64{1.5}, -1, nil); nn != nil {
		t.Errorf("k<0 should return nil")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9}}
	tr := Build(pts)
	nn := tr.KNN([]float64{0.5, 0.5}, 3, nil)
	if len(nn) != 3 {
		t.Fatalf("got %d results", len(nn))
	}
	for i, r := range nn {
		if r.Dist2 != 0 {
			t.Errorf("result %d should be exact duplicate, dist %v", i, r.Dist2)
		}
	}
	// Deterministic tie-break by id.
	if nn[0].ID != 0 || nn[1].ID != 1 || nn[2].ID != 2 {
		t.Errorf("tie-break by id failed: %v", nn)
	}
}

func TestCentroid(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 4}, {4, 8}}
	nn := []Neighbour{{ID: 0}, {ID: 2}}
	c := Centroid(pts, nn, 2)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Centroid = %v, want [2 4]", c)
	}
	empty := Centroid(pts, nil, 2)
	if empty[0] != 0 || empty[1] != 0 {
		t.Errorf("empty centroid should be zero vector")
	}
}

func TestDist(t *testing.T) {
	if d := Dist([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func TestPropertyTreeEqualsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		d := 1 + r.Intn(6)
		k := 1 + r.Intn(10)
		pts := randomPoints(r, n, d)
		tr := Build(pts)
		q := make([]float64, d)
		for j := range q {
			q[j] = r.Float64() * 1.5
		}
		got := tr.KNN(q, k, nil)
		want := BruteKNN(pts, q, k, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Same distances (ids may differ only under exact ties, which
			// the deterministic tie-break prevents).
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 || got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Errorf("tree != brute force: %v", err)
	}
}

func BenchmarkBuild1000x8(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 1000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkKNN1000x8(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomPoints(rng, 1000, 8)
	tr := Build(pts)
	q := make([]float64, 8)
	for j := range q {
		q[j] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(q, 7, nil)
	}
}

func TestKNNCanonicalUnderTies(t *testing.T) {
	// A ring of equidistant points: the kept subset must be the lowest
	// ids, regardless of tree layout.
	pts := [][]float64{
		{1, 0}, {0, 1}, {-1, 0}, {0, -1},
		{0.7071, 0.7071}, {-0.7071, 0.7071}, {0.7071, -0.7071}, {-0.7071, -0.7071},
	}
	tr := Build(pts)
	nn := tr.KNN([]float64{0, 0}, 3, nil)
	if len(nn) != 3 {
		t.Fatalf("got %d results", len(nn))
	}
	// The four axis points are exactly at distance 1; the diagonals at
	// ~0.99999... due to rounding — accept either, but the result must
	// equal brute force exactly.
	want := BruteKNN(pts, []float64{0, 0}, 3, nil)
	for i := range want {
		if nn[i] != want[i] {
			t.Fatalf("tie handling differs from canonical brute force: %v vs %v", nn, want)
		}
	}
}

func TestKNNCanonicalWithExclusionOfDuplicates(t *testing.T) {
	// Excluding different members of a duplicate group must yield
	// neighbour sets that differ only by the swapped duplicate.
	pts := [][]float64{
		{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, // duplicates
		{0.6, 0.5}, {0.4, 0.5}, {0.5, 0.6}, {0.5, 0.4}, // equidistant ring
		{0.9, 0.9},
	}
	tr := Build(pts)
	q := []float64{0.5, 0.5}
	n0 := tr.KNN(q, 5, func(id int) bool { return id == 0 })
	n1 := tr.KNN(q, 5, func(id int) bool { return id == 1 })
	// Replace ids 0/1 with a sentinel to compare the rest.
	norm := func(nn []Neighbour, self int) []Neighbour {
		out := append([]Neighbour(nil), nn...)
		for i := range out {
			if out[i].ID == 0 || out[i].ID == 1 || out[i].ID == 2 {
				out[i].ID = -1 // any duplicate is interchangeable
			}
		}
		return out
	}
	a, b := norm(n0, 0), norm(n1, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("neighbour structure differs beyond the excluded duplicate: %v vs %v", n0, n1)
		}
	}
}
