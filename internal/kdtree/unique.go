package kdtree

import (
	"math"
	"sort"
)

// VectorKey appends an exact byte encoding of vec to dst and returns
// the extended slice: 8 bytes per coordinate, the little-endian
// Float64bits of each value in order. The encoding is injective on
// bit patterns — two vectors map to the same key exactly when every
// coordinate is bitwise identical — and fixed-width, so keys of
// equal-dimension vectors never collide by concatenation ambiguity.
//
// Note the bit-level view deliberately distinguishes +0.0 from -0.0
// (and every NaN payload): signed zeros form separate dedup groups at
// distance zero of each other, which grouping by key handles
// correctly because coincident groups resolve to identical
// neighbourhoods.
func VectorKey(dst []byte, vec []float64) []byte {
	for _, v := range vec {
		bits := math.Float64bits(v)
		dst = append(dst,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return dst
}

// WeightedSet is the unique-vector view of a point matrix: Vecs holds
// the first occurrence of every distinct (bitwise) vector in input
// order, Members the ascending original row indices carrying it. The
// multiplicity of unique vector u is len(Members[u]).
type WeightedSet struct {
	Vecs    [][]float64
	Members [][]int32
}

// Uniq groups the rows of points by exact (bitwise) vector equality.
// Row slices are referenced, not copied.
func Uniq(points [][]float64) *WeightedSet {
	s := &WeightedSet{}
	index := make(map[string]int, len(points))
	var key []byte
	for i, p := range points {
		key = VectorKey(key[:0], p)
		u, ok := index[string(key)]
		if !ok {
			u = len(s.Vecs)
			index[string(key)] = u
			s.Vecs = append(s.Vecs, p)
			s.Members = append(s.Members, nil)
		}
		s.Members[u] = append(s.Members[u], int32(i))
	}
	return s
}

// Len returns the number of unique vectors.
func (s *WeightedSet) Len() int { return len(s.Vecs) }

// Rows returns the total number of original rows.
func (s *WeightedSet) Rows() int {
	n := 0
	for _, m := range s.Members {
		n += len(m)
	}
	return n
}

// WeightedIndex answers instance-level k-NN queries over the original
// matrix with one weighted query over its unique vectors: the SEL
// fast path's core data structure (DESIGN.md §10). For any query q
// and k, KNN returns exactly BruteKNN(points, q, k, nil) — bitwise,
// including (distance, id) tie order — because duplicate rows are
// bitwise equal to their unique vector, so per-instance distances are
// identical and the weighted query's distance-closed cover expands to
// the canonical instance prefix.
type WeightedIndex struct {
	Set  *WeightedSet
	flat *Flat
}

// NewWeightedIndex builds the weighted flattened tree over the set's
// unique vectors.
func NewWeightedIndex(s *WeightedSet) *WeightedIndex {
	weights := make([]int, len(s.Vecs))
	for u, m := range s.Members {
		weights[u] = len(m)
	}
	return &WeightedIndex{Set: s, flat: BuildFlatWeighted(s.Vecs, weights)}
}

// IndexPoints builds the WeightedIndex of a point matrix directly.
func IndexPoints(points [][]float64) *WeightedIndex {
	return NewWeightedIndex(Uniq(points))
}

// Groups returns the distance-closed unique-vector cover of the k
// nearest instances of q (see Flat.KNNWeighted); IDs index Set.Vecs.
func (ix *WeightedIndex) Groups(q []float64, k int) []WeightedNeighbour {
	return ix.flat.KNNWeighted(q, k)
}

// KNN returns the k nearest original rows of q by (distance, id),
// bitwise equal to BruteKNN over the original matrix with no
// exclusion. Only the first k members of any one group can survive
// the final cut, so expansion is capped per group and the total work
// beyond the weighted query is O(k log k).
func (ix *WeightedIndex) KNN(q []float64, k int) []Neighbour {
	if k <= 0 {
		return nil
	}
	groups := ix.flat.KNNWeighted(q, k)
	out := make([]Neighbour, 0, k+8)
	for _, g := range groups {
		mem := ix.Set.Members[g.ID]
		take := len(mem)
		if take > k {
			take = k
		}
		for _, id := range mem[:take] {
			out = append(out, Neighbour{ID: int(id), Dist2: g.Dist2})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
