package kdtree_test

// Fuzz target for the dedup key encoding the SEL fast path groups
// quantized feature vectors by (DESIGN.md §10). The required
// properties are exactly what Uniq relies on: keys are stable across
// calls, fixed-width (8 bytes per coordinate, so no concatenation
// ambiguity between equal-dimension vectors), and injective on bit
// patterns — two vectors collide exactly when every coordinate is
// bitwise identical. The checked-in corpus (testdata/fuzz) seeds the
// interesting encodings: signed zeros, NaN payloads, denormals.

import (
	"encoding/binary"
	"math"
	"testing"

	"transer/internal/kdtree"
)

// decodeVec reinterprets raw bytes as a float64 vector, little-endian
// 8-byte chunks, dropping any trailing partial chunk.
func decodeVec(raw []byte) []float64 {
	v := make([]float64, 0, len(raw)/8)
	for len(raw) >= 8 {
		v = append(v, math.Float64frombits(binary.LittleEndian.Uint64(raw)))
		raw = raw[8:]
	}
	return v
}

// bitsEqual compares two vectors bit pattern by bit pattern (== would
// conflate +0.0 with -0.0 and break on NaN).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func FuzzVectorKey(f *testing.F) {
	zero := make([]byte, 8)
	negZero := []byte{0, 0, 0, 0, 0, 0, 0, 0x80}
	f.Add(zero, negZero)
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0xf8, 0x7f}, []byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f}) // NaN payloads
	f.Add([]byte{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0xd6, 0x3f}, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		va, vb := decodeVec(rawA), decodeVec(rawB)
		keyA := kdtree.VectorKey(nil, va)
		keyB := kdtree.VectorKey(nil, vb)
		if len(keyA) != 8*len(va) {
			t.Fatalf("key of %d-vector has %d bytes, want %d", len(va), len(keyA), 8*len(va))
		}
		if again := kdtree.VectorKey(nil, va); string(again) != string(keyA) {
			t.Fatalf("encoding not stable across runs: %x vs %x", again, keyA)
		}
		if got, want := string(keyA) == string(keyB), bitsEqual(va, vb); got != want {
			t.Fatalf("key collision = %v but bitwise vector equality = %v (a=%v b=%v)", got, want, va, vb)
		}
		// Appending must extend, not restart: the dst-passing contract
		// Uniq's reused buffer depends on.
		joint := kdtree.VectorKey(keyA[:len(keyA):len(keyA)], vb)
		if string(joint[:len(keyA)]) != string(keyA) || string(joint[len(keyA):]) != string(keyB) {
			t.Fatalf("append form corrupts existing key bytes")
		}
		// Uniq must group by exactly this key.
		if len(va) == len(vb) && len(va) > 0 {
			set := kdtree.Uniq([][]float64{va, vb})
			wantGroups := 2
			if bitsEqual(va, vb) {
				wantGroups = 1
			}
			if set.Len() != wantGroups {
				t.Fatalf("Uniq made %d groups, want %d (a=%v b=%v)", set.Len(), wantGroups, va, vb)
			}
		}
	})
}
