package kdtree

import "sort"

// flatLeafSize is the point count below which a subtree becomes one
// contiguous leaf block. Leaves of ~16 points keep the tree shallow
// while the per-leaf scan stays a linear walk over one or two cache
// lines per point.
const flatLeafSize = 16

// Flat is a k-d tree over the same point sets as Tree with a
// cache-friendly layout: node metadata lives in small parallel arrays
// and every point's coordinates are copied into one contiguous
// float64 buffer in tree order, so queries scan leaf blocks linearly
// instead of chasing per-node point pointers.
//
// Queries are bitwise-identical to Tree.KNN: squared distances
// accumulate coordinate-by-coordinate in the same order with the same
// float64 operations, the kept candidate set is canonical under
// (distance, id), and the far-subtree prune uses the same single-axis
// diff*diff <= worst test with equality explored. Two classic
// refinements were tried on the real comparison matrices and
// reverted as net losses, so Flat deliberately has neither:
// bounding-box node pruning (the box bound almost never beats the
// single-axis test once that test has passed, and its O(dim) cost
// per gate slowed queries) and leaf-scan early exit on the partial
// sum (the bound is typically only exceeded in the last coordinates,
// so the per-coordinate branch cost more than the skipped work).
// The win over Tree comes from the layout alone.
//
// Exactness note: coordinates are stored as float64, not float32.
// Narrowing the storage would change distance rounding and break the
// SEL exactness contract (DESIGN.md §10); the win comes from the
// blocked layout, not reduced precision. The float32 blocked kernel
// (SqDist32) exists for callers that are explicitly approximate.
//
// Flat additionally supports per-point integer weights, interpreting
// indexed point i as Weight(i) coincident instances: KNNWeighted
// answers instance-level k-NN questions with one query over the
// deduplicated points (the SEL fast path, DESIGN.md §10).
//
// The tree is immutable after Build*; queries are goroutine-safe.
type Flat struct {
	dim int
	// Per-node parallel arrays; node 0 is the root. axis < 0 marks a
	// leaf, whose points occupy slots [start, start+count).
	axis         []int32
	split        []float64
	left, right  []int32
	start, count []int32
	// Per-slot arrays in tree order: ids maps a slot to the original
	// point index, coords holds the slot's dim coordinates
	// contiguously, weights the slot's multiplicity (nil = all 1).
	ids     []int32
	coords  []float64
	weights []int32
}

// BuildFlat constructs a flattened k-d tree over points. Coordinates
// are copied; the input may be mutated afterwards. All points must
// share the same dimensionality. An empty point set yields a usable
// empty tree whose queries return no results.
func BuildFlat(points [][]float64) *Flat { return BuildFlatWeighted(points, nil) }

// BuildFlatWeighted constructs a flattened k-d tree where point i
// stands for weights[i] coincident instances (every weight must be
// >= 1). A nil weights slice means all weights are 1.
func BuildFlatWeighted(points [][]float64, weights []int) *Flat {
	f := &Flat{}
	if len(points) == 0 {
		return f
	}
	f.dim = len(points[0])
	perm := make([]int32, len(points))
	for i := range perm {
		perm[i] = int32(i)
	}
	f.buildNode(points, perm, 0, len(points), 0)
	f.ids = perm
	f.coords = make([]float64, len(points)*f.dim)
	for slot, id := range perm {
		copy(f.coords[slot*f.dim:], points[id])
	}
	if weights != nil {
		f.weights = make([]int32, len(perm))
		for slot, id := range perm {
			f.weights[slot] = int32(weights[id])
		}
	}
	return f
}

// buildNode recursively lays out the subtree over perm[lo:hi] and
// returns its node index. Internal nodes split at the median of the
// depth's axis; the median coordinate goes to the split plane and the
// points partition around it, so the standard per-axis prune bound
// holds on both sides.
func (f *Flat) buildNode(points [][]float64, perm []int32, lo, hi, depth int) int32 {
	id := int32(len(f.axis))
	if hi-lo <= flatLeafSize {
		f.axis = append(f.axis, -1)
		f.split = append(f.split, 0)
		f.left = append(f.left, -1)
		f.right = append(f.right, -1)
		f.start = append(f.start, int32(lo))
		f.count = append(f.count, int32(hi-lo))
		return id
	}
	ax := depth % f.dim
	sub := perm[lo:hi]
	sort.Slice(sub, func(i, j int) bool {
		return points[sub[i]][ax] < points[sub[j]][ax]
	})
	mid := (lo + hi) / 2
	f.axis = append(f.axis, int32(ax))
	f.split = append(f.split, points[perm[mid]][ax])
	f.left = append(f.left, -1)
	f.right = append(f.right, -1)
	f.start = append(f.start, 0)
	f.count = append(f.count, 0)
	l := f.buildNode(points, perm, lo, mid, depth+1)
	r := f.buildNode(points, perm, mid, hi, depth+1)
	f.left[id] = l
	f.right[id] = r
	return id
}

// Len returns the number of indexed points.
func (f *Flat) Len() int { return len(f.ids) }

// Dim returns the dimensionality of the indexed points (0 when empty).
func (f *Flat) Dim() int { return f.dim }

// kCollector keeps the k lexicographically smallest (distance, id)
// candidates in a hand-rolled max-heap — the same canonical set
// Tree.KNN keeps, without container/heap's interface boxing.
type kCollector struct {
	h       []Neighbour
	k       int
	exclude func(int) bool
}

func (c *kCollector) add(id int, d2 float64) {
	if c.exclude != nil && c.exclude(id) {
		return
	}
	n := Neighbour{ID: id, Dist2: d2}
	if len(c.h) < c.k {
		c.h = append(c.h, n)
		// Sift up under (distance, id) max order.
		i := len(c.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(c.h[i], c.h[p]) {
				break
			}
			c.h[i], c.h[p] = c.h[p], c.h[i]
			i = p
		}
		return
	}
	if !worse(c.h[0], n) {
		return
	}
	c.h[0] = n
	c.siftDown()
}

func (c *kCollector) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(c.h) && worse(c.h[l], c.h[m]) {
			m = l
		}
		if r < len(c.h) && worse(c.h[r], c.h[m]) {
			m = r
		}
		if m == i {
			return
		}
		c.h[i], c.h[m] = c.h[m], c.h[i]
		i = m
	}
}

// KNN returns the k nearest neighbours of q by Euclidean distance,
// sorted ascending by (distance, id). Semantics, including the
// exclude filter and the fewer-than-k case, match Tree.KNN exactly;
// for equal point sets the result is bitwise identical.
func (f *Flat) KNN(q []float64, k int, exclude func(id int) bool) []Neighbour {
	if k <= 0 || len(f.ids) == 0 {
		return nil
	}
	c := kCollector{h: make([]Neighbour, 0, k), k: k, exclude: exclude}
	f.searchK(0, q, &c)
	out := c.h
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (f *Flat) searchK(node int32, q []float64, c *kCollector) {
	if f.axis[node] < 0 {
		lo := int(f.start[node])
		base := lo * f.dim
		for p := 0; p < int(f.count[node]); p++ {
			row := f.coords[base+p*f.dim : base+(p+1)*f.dim]
			s := 0.0
			for i, v := range q {
				d := v - row[i]
				s += d * d
			}
			c.add(int(f.ids[lo+p]), s)
		}
		return
	}
	diff := q[f.axis[node]] - f.split[node]
	near, far := f.left[node], f.right[node]
	if diff > 0 {
		near, far = far, near
	}
	f.searchK(near, q, c)
	// Same prune as Tree.search: explore the far side while candidates
	// are missing or the splitting plane is at most as far as the
	// current worst (equality explored so ties resolve canonically).
	if len(c.h) < c.k || diff*diff <= c.h[0].Dist2 {
		f.searchK(far, q, c)
	}
}

// WeightedNeighbour is one weighted k-NN result: a point covering
// Weight coincident instances at squared distance Dist2.
type WeightedNeighbour struct {
	ID     int
	Dist2  float64
	Weight int
}

// wWorse reports whether a ranks strictly after b in (distance, id)
// order.
func wWorse(a, b WeightedNeighbour) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 > b.Dist2
	}
	return a.ID > b.ID
}

// wCollector keeps the minimal prefix of points, in (distance, id)
// order grouped by distance, whose weights cover w instances: every
// point strictly closer than the w-th nearest instance's distance D*
// plus every point tied at D*. Whole distance classes are kept or
// evicted together, so the boundary class always survives intact —
// the caller slices the exact instance set out of it.
type wCollector struct {
	h    []WeightedNeighbour // max-heap by (distance, id)
	cumW int
	w    int
	tied []WeightedNeighbour // class-eviction scratch
}

func (c *wCollector) full() bool { return c.cumW >= c.w }

func (c *wCollector) add(id int, d2 float64, weight int) {
	if c.full() && d2 > c.h[0].Dist2 {
		return
	}
	c.push(WeightedNeighbour{ID: id, Dist2: d2, Weight: weight})
	c.cumW += weight
	c.evict()
}

func (c *wCollector) push(n WeightedNeighbour) {
	c.h = append(c.h, n)
	i := len(c.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wWorse(c.h[i], c.h[p]) {
			break
		}
		c.h[i], c.h[p] = c.h[p], c.h[i]
		i = p
	}
}

func (c *wCollector) pop() WeightedNeighbour {
	top := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h = c.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(c.h) && wWorse(c.h[l], c.h[m]) {
			m = l
		}
		if r < len(c.h) && wWorse(c.h[r], c.h[m]) {
			m = r
		}
		if m == i {
			break
		}
		c.h[i], c.h[m] = c.h[m], c.h[i]
		i = m
	}
	return top
}

// evict drops maximal whole distance classes while the remaining
// weight still covers w. A class is droppable only when every member
// sits strictly beyond D*; a class intersecting the boundary is
// pushed back untouched.
func (c *wCollector) evict() {
	for len(c.h) > 0 {
		// Cheap guard: the top entry's own weight bounds its class
		// weight from below, so if even that cannot be spared, no
		// class can be dropped.
		if c.cumW-int(c.h[0].Weight) < c.w {
			return
		}
		top := c.h[0].Dist2
		c.tied = c.tied[:0]
		tw := 0
		for len(c.h) > 0 && c.h[0].Dist2 == top {
			e := c.pop()
			c.tied = append(c.tied, e)
			tw += e.Weight
		}
		if c.cumW-tw >= c.w {
			c.cumW -= tw
			continue
		}
		for _, e := range c.tied {
			c.push(e)
		}
		return
	}
}

// KNNWeighted treats indexed point i as Weight(i) coincident
// instances and returns, sorted ascending by (distance, id), every
// point strictly closer than the w-th nearest instance's distance
// plus every point tied at it. The result therefore always covers at
// least w instances (when the tree holds that many) and is the
// smallest distance-closed set that does.
func (f *Flat) KNNWeighted(q []float64, w int) []WeightedNeighbour {
	if w <= 0 || len(f.ids) == 0 {
		return nil
	}
	c := wCollector{h: make([]WeightedNeighbour, 0, w+8), w: w}
	f.searchW(0, q, &c)
	out := c.h
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (f *Flat) searchW(node int32, q []float64, c *wCollector) {
	if f.axis[node] < 0 {
		lo := int(f.start[node])
		base := lo * f.dim
		for p := 0; p < int(f.count[node]); p++ {
			row := f.coords[base+p*f.dim : base+(p+1)*f.dim]
			s := 0.0
			for i, v := range q {
				d := v - row[i]
				s += d * d
			}
			weight := 1
			if f.weights != nil {
				weight = int(f.weights[lo+p])
			}
			c.add(int(f.ids[lo+p]), s, weight)
		}
		return
	}
	diff := q[f.axis[node]] - f.split[node]
	near, far := f.left[node], f.right[node]
	if diff > 0 {
		near, far = far, near
	}
	f.searchW(near, q, c)
	if !c.full() || diff*diff <= c.h[0].Dist2 {
		f.searchW(far, q, c)
	}
}

// SqDist exposes the package's canonical squared Euclidean distance:
// coordinate-ascending accumulation, the exact operation order every
// exact k-NN path in this package uses.
func SqDist(a, b []float64) float64 { return sqDist(a, b) }

// SqDist32 is the blocked float32 distance kernel for explicitly
// approximate callers: four independent accumulators unroll the loop,
// trading the exact accumulation order (and float64 precision) for
// speed. Never use it on an exact path.
func SqDist32(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}
