package kdtree_test

// Differential and property suite for the flattened tree and the
// unique-vector weighted index (DESIGN.md §10). The contract of both
// is exact — bitwise equality with the pointer tree / the brute-force
// scan, (distance, id) ties included — so every assertion compares
// with ==. Duplicate-heavy inputs come from testkit.GridMatrix plus
// forced verbatim duplicate groups, the regime the weighted index
// exists for.

import (
	"testing"

	"transer/internal/kdtree"
	"transer/internal/testkit"
)

// dupGridMatrix generates a grid matrix with extra forced verbatim
// duplicate rows, so every trial contains multi-member groups.
func dupGridMatrix(pt *testkit.T, n, m int) [][]float64 {
	pts := testkit.GridMatrix(pt.Rng, n, m)
	for k := 0; k < n/2; k++ {
		pts[pt.Rng.Intn(n)] = pts[pt.Rng.Intn(n)]
	}
	return pts
}

// TestFlatKNNMatchesTree: Flat.KNN is bitwise identical to Tree.KNN
// (and hence BruteKNN) on continuous and grid matrices, with and
// without exclusion, including k > n and duplicate-heavy inputs.
func TestFlatKNNMatchesTree(t *testing.T) {
	testkit.Run(t, "kdtree/flat-vs-tree", 16, func(pt *testkit.T) {
		n := 3*pt.Size + 8
		m := 1 + pt.Rng.Intn(4)
		var pts [][]float64
		switch pt.Rng.Intn(3) {
		case 0:
			pts = testkit.Matrix(pt.Rng, n, m)
		case 1:
			pts = testkit.GridMatrix(pt.Rng, n, m)
		default:
			pts = dupGridMatrix(pt, n, m)
		}
		tree := kdtree.Build(pts)
		flat := kdtree.BuildFlat(pts)
		k := 1 + pt.Rng.Intn(n+2)
		var exclude func(int) bool
		if pt.Rng.Intn(2) == 0 {
			banned := pt.Rng.Intn(n)
			exclude = func(id int) bool { return id == banned }
		}
		for trial := 0; trial < 5; trial++ {
			q := pts[pt.Rng.Intn(n)]
			if trial%2 == 0 {
				q = testkit.Matrix(pt.Rng, 1, m)[0]
			}
			got := flat.KNN(q, k, exclude)
			want := tree.KNN(q, k, exclude)
			if !neighboursEqual(got, want) {
				pt.Errorf("Flat.KNN(k=%d) disagrees with Tree.KNN:\nflat %v\ntree %v", k, got, want)
				return
			}
		}
	})
}

// TestWeightedIndexKNNMatchesBrute: the multiplicity-aware unique-
// vector k-NN expands to exactly the brute-force instance-level
// answer over the duplicated input — the core exactness property of
// the SEL fast path.
func TestWeightedIndexKNNMatchesBrute(t *testing.T) {
	testkit.Run(t, "kdtree/weighted-vs-brute", 16, func(pt *testkit.T) {
		n := 3*pt.Size + 8
		m := 1 + pt.Rng.Intn(4)
		pts := dupGridMatrix(pt, n, m)
		ix := kdtree.IndexPoints(pts)
		for trial := 0; trial < 4; trial++ {
			q := pts[pt.Rng.Intn(n)]
			if trial%2 == 0 {
				q = testkit.GridMatrix(pt.Rng, 1, m)[0]
			}
			k := 1 + pt.Rng.Intn(n+2)
			got := ix.KNN(q, k)
			want := kdtree.BruteKNN(pts, q, k, nil)
			if !neighboursEqual(got, want) {
				pt.Errorf("WeightedIndex.KNN(k=%d) disagrees with brute force:\nindex %v\nbrute %v", k, got, want)
				return
			}
		}
	})
}

// TestKNNWeightedCounts: the weighted query returns exactly the
// distance-closed cover of the k nearest instances — every unique
// vector strictly inside the k-th instance distance D*, every vector
// tied at D*, nothing beyond — with multiplicities matching the brute
// instance counts.
func TestKNNWeightedCounts(t *testing.T) {
	testkit.Run(t, "kdtree/weighted-counts", 16, func(pt *testkit.T) {
		n := 3*pt.Size + 8
		m := 1 + pt.Rng.Intn(3)
		pts := dupGridMatrix(pt, n, m)
		set := kdtree.Uniq(pts)
		weights := make([]int, set.Len())
		for u, mem := range set.Members {
			weights[u] = len(mem)
		}
		flat := kdtree.BuildFlatWeighted(set.Vecs, weights)
		q := testkit.GridMatrix(pt.Rng, 1, m)[0]
		k := 1 + pt.Rng.Intn(n)

		got := flat.KNNWeighted(q, k)

		// Brute oracle: D* is the k-th smallest instance distance over
		// the duplicated rows; the expected cover is every unique
		// vector with distance <= D*.
		all := kdtree.BruteKNN(pts, q, n, nil)
		dstar := all[k-1].Dist2
		wantCover := map[int]int{}
		for u, v := range set.Vecs {
			if d := kdtree.SqDist(q, v); d <= dstar {
				wantCover[u] = len(set.Members[u])
			}
		}
		if len(got) != len(wantCover) {
			pt.Errorf("cover size %d, want %d (D*=%v)\ngot %v\nwant %v", len(got), len(wantCover), dstar, got, wantCover)
			return
		}
		cum := 0
		for i, g := range got {
			w, ok := wantCover[g.ID]
			if !ok || w != g.Weight {
				pt.Errorf("group %d: id=%d weight=%d not in expected cover %v", i, g.ID, g.Weight, wantCover)
				return
			}
			if g.Dist2 != kdtree.SqDist(q, set.Vecs[g.ID]) {
				pt.Errorf("group %d: distance %v differs from direct %v", i, g.Dist2, kdtree.SqDist(q, set.Vecs[g.ID]))
				return
			}
			if i > 0 {
				prev := got[i-1]
				if prev.Dist2 > g.Dist2 || (prev.Dist2 == g.Dist2 && prev.ID >= g.ID) {
					pt.Errorf("groups not in (distance, id) order at %d: %v then %v", i, prev, g)
					return
				}
			}
			cum += g.Weight
		}
		if cum < k {
			pt.Errorf("cover weight %d does not reach k=%d", cum, k)
		}
	})
}

// TestUniqGroups: Uniq groups rows exactly by bitwise vector
// equality, first-occurrence order, ascending members, with signed
// zeros in distinct groups.
func TestUniqGroups(t *testing.T) {
	testkit.Run(t, "kdtree/uniq", 12, func(pt *testkit.T) {
		n := 2*pt.Size + 6
		m := 1 + pt.Rng.Intn(3)
		pts := dupGridMatrix(pt, n, m)
		set := kdtree.Uniq(pts)
		if set.Rows() != n {
			pt.Fatalf("Rows() = %d, want %d", set.Rows(), n)
		}
		seen := map[string]bool{}
		var key []byte
		covered := 0
		for u, v := range set.Vecs {
			key = kdtree.VectorKey(key[:0], v)
			if seen[string(key)] {
				pt.Fatalf("unique vector %d repeats an earlier group", u)
			}
			seen[string(key)] = true
			mem := set.Members[u]
			if len(mem) == 0 {
				pt.Fatalf("group %d empty", u)
			}
			for i, id := range mem {
				var rk []byte
				rk = kdtree.VectorKey(rk, pts[id])
				if string(rk) != string(key) {
					pt.Fatalf("group %d member %d is not bitwise equal to the group vector", u, id)
				}
				if i > 0 && mem[i-1] >= id {
					pt.Fatalf("group %d members not ascending: %v", u, mem)
				}
			}
			covered += len(mem)
		}
		if covered != n {
			pt.Fatalf("groups cover %d rows, want %d", covered, n)
		}
	})
}

// TestFlatEdgeCases pins the degenerate inputs: empty trees, k <= 0,
// w <= 0, and w covering the whole instance set.
func TestFlatEdgeCases(t *testing.T) {
	empty := kdtree.BuildFlat(nil)
	if got := empty.KNN([]float64{1}, 3, nil); got != nil {
		t.Errorf("empty tree KNN = %v, want nil", got)
	}
	if got := empty.KNNWeighted([]float64{1}, 3); got != nil {
		t.Errorf("empty tree KNNWeighted = %v, want nil", got)
	}
	pts := [][]float64{{0.2, 0.4}, {0.2, 0.4}, {0.8, 0.1}}
	flat := kdtree.BuildFlat(pts)
	if got := flat.KNN(pts[0], 0, nil); got != nil {
		t.Errorf("k=0 KNN = %v, want nil", got)
	}
	if got := flat.KNNWeighted(pts[0], 0); got != nil {
		t.Errorf("w=0 KNNWeighted = %v, want nil", got)
	}
	if flat.Len() != 3 || flat.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d, want 3/2", flat.Len(), flat.Dim())
	}
	ix := kdtree.IndexPoints(pts)
	if got, want := ix.KNN(pts[0], 10), kdtree.BruteKNN(pts, pts[0], 10, nil); !neighboursEqual(got, want) {
		t.Errorf("w beyond instance count: %v, want %v", got, want)
	}
	groups := ix.Groups(pts[0], 2)
	if len(groups) != 1 || groups[0].Weight != 2 {
		t.Errorf("Groups = %v, want the single duplicate group of weight 2", groups)
	}
}
