// Package kdtree implements a static k-d tree (Bentley, 1975) over
// dense float64 points with exact k-nearest-neighbour queries. It is
// the neighbourhood index behind the TransER instance selector and the
// LocIT* baseline: for every source instance the selector asks for the
// k nearest feature vectors in the source and in the target matrix.
//
// The tree is built once from a point set and is immutable afterwards;
// queries are goroutine-safe.
package kdtree

import (
	"container/heap"
	"math"
	"sort"
)

// Tree is an immutable k-d tree over a fixed point set.
type Tree struct {
	dim    int
	points [][]float64 // original points, indexed by id
	nodes  []node      // flattened tree, nodes[0] is the root if len > 0
}

type node struct {
	point       []float64
	id          int // index into the original point slice
	axis        int
	left, right int32 // node indices; -1 means none
}

// Build constructs a k-d tree over points. The point slices are
// referenced, not copied; callers must not mutate them afterwards. All
// points must share the same dimensionality. An empty point set yields
// a usable empty tree whose queries return no results.
func Build(points [][]float64) *Tree {
	t := &Tree{points: points}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	t.nodes = make([]node, 0, len(points))
	t.build(ids, 0)
	return t
}

// build recursively constructs the subtree over ids split on the given
// axis and returns its node index.
func (t *Tree) build(ids []int, depth int) int32 {
	if len(ids) == 0 {
		return -1
	}
	axis := depth % t.dim
	// Median split: sort ids by the axis coordinate. For the modest
	// point counts in ER feature matrices a sort-based median keeps the
	// code simple and the tree perfectly balanced.
	sort.Slice(ids, func(i, j int) bool {
		return t.points[ids[i]][axis] < t.points[ids[j]][axis]
	})
	mid := len(ids) / 2
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		point: t.points[ids[mid]],
		id:    ids[mid],
		axis:  axis,
	})
	// Children are appended after the parent; record their indices.
	left := append([]int(nil), ids[:mid]...)
	right := append([]int(nil), ids[mid+1:]...)
	l := t.build(left, depth+1)
	r := t.build(right, depth+1)
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.points) }

// Dim returns the dimensionality of the indexed points (0 when empty).
func (t *Tree) Dim() int { return t.dim }

// Neighbour is one k-NN result: the point's index in the original
// slice and its squared Euclidean distance to the query.
type Neighbour struct {
	ID    int
	Dist2 float64
}

// maxHeap of neighbours ordered by (distance, id) — lexicographically
// largest on top — so the current worst candidate can be evicted in
// O(log k). Including the id in the order makes the kept set canonical
// under distance ties: the query returns exactly the k smallest
// neighbours by (distance, id), independent of tree traversal order.
type nnHeap []Neighbour

func (h nnHeap) Len() int { return len(h) }
func (h nnHeap) Less(i, j int) bool {
	if h[i].Dist2 != h[j].Dist2 {
		return h[i].Dist2 > h[j].Dist2
	}
	return h[i].ID > h[j].ID
}
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(Neighbour)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// KNN returns the k nearest neighbours of q by Euclidean distance,
// sorted by ascending distance (ties broken by id for determinism). If
// the tree holds fewer than k points, all points are returned. The
// exclude function, when non-nil, filters out candidate ids (used to
// exclude the query instance itself when searching its own domain).
func (t *Tree) KNN(q []float64, k int, exclude func(id int) bool) []Neighbour {
	if k <= 0 || len(t.nodes) == 0 {
		return nil
	}
	h := make(nnHeap, 0, k+1)
	t.search(0, q, k, exclude, &h)
	out := make([]Neighbour, len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (t *Tree) search(ni int32, q []float64, k int, exclude func(int) bool, h *nnHeap) {
	if ni < 0 {
		return
	}
	n := &t.nodes[ni]
	if exclude == nil || !exclude(n.id) {
		d2 := sqDist(q, n.point)
		cand := Neighbour{ID: n.id, Dist2: d2}
		if len(*h) < k {
			heap.Push(h, cand)
		} else if worse((*h)[0], cand) {
			(*h)[0] = cand
			heap.Fix(h, 0)
		}
	}
	diff := q[n.axis] - n.point[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.search(near, q, k, exclude, h)
	// Prune the far subtree unless the splitting plane is at most as
	// far as the current worst candidate (equality must be explored so
	// distance ties resolve canonically by id) or we still need more
	// candidates.
	if len(*h) < k || diff*diff <= (*h)[0].Dist2 {
		t.search(far, q, k, exclude, h)
	}
}

// worse reports whether a ranks strictly after b in (distance, id)
// order, i.e. whether candidate b should replace heap-worst a.
func worse(a, b Neighbour) bool {
	if a.Dist2 != b.Dist2 {
		return a.Dist2 > b.Dist2
	}
	return a.ID > b.ID
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// BruteKNN is the reference O(n) nearest-neighbour scan used in tests
// and as a fallback for tiny point sets.
func BruteKNN(points [][]float64, q []float64, k int, exclude func(id int) bool) []Neighbour {
	if k <= 0 {
		return nil
	}
	all := make([]Neighbour, 0, len(points))
	for i, p := range points {
		if exclude != nil && exclude(i) {
			continue
		}
		all = append(all, Neighbour{ID: i, Dist2: sqDist(q, p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist2 != all[j].Dist2 {
			return all[i].Dist2 < all[j].Dist2
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Centroid returns the component-wise mean of the points referenced by
// the neighbour list. It is the quantity that Equation (2) of the
// paper compares between the source and target neighbourhoods. An
// empty neighbour list yields the zero vector.
func Centroid(points [][]float64, nn []Neighbour, dim int) []float64 {
	c := make([]float64, dim)
	if len(nn) == 0 {
		return c
	}
	for _, n := range nn {
		p := points[n.ID]
		for j := range c {
			c[j] += p[j]
		}
	}
	inv := 1 / float64(len(nn))
	for j := range c {
		c[j] *= inv
	}
	return c
}

// Dist returns the Euclidean distance between two equal-length vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(sqDist(a, b)) }
