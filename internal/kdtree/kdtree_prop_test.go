package kdtree_test

// Property suite for the KD-tree, driven by internal/testkit. The
// tree's contract is exact: KNN returns the k smallest neighbours in
// the canonical (distance, id) order, so every assertion compares
// against the brute-force reference with == — on continuous matrices
// (no ties) and on grid matrices (heavy ties and signed zeros) alike.

import (
	"testing"

	"transer/internal/kdtree"
	"transer/internal/testkit"
)

func neighboursEqual(a, b []kdtree.Neighbour) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKNNMatchesBruteForce: the tree agrees with the O(n) scan on both
// value regimes, with and without an exclusion filter, for queries
// drawn both from the indexed points and from fresh locations.
func TestKNNMatchesBruteForce(t *testing.T) {
	testkit.Run(t, "kdtree/knn-vs-brute", 16, func(pt *testkit.T) {
		n := 3*pt.Size + 8
		m := 1 + pt.Rng.Intn(4)
		pts := testkit.Matrix(pt.Rng, n, m)
		if pt.Rng.Intn(2) == 0 {
			pts = testkit.GridMatrix(pt.Rng, n, m)
		}
		tree := kdtree.Build(pts)
		k := 1 + pt.Rng.Intn(n+2) // deliberately allowed to exceed n
		var exclude func(int) bool
		if pt.Rng.Intn(2) == 0 {
			banned := pt.Rng.Intn(n)
			exclude = func(id int) bool { return id == banned }
		}
		for trial := 0; trial < 5; trial++ {
			q := pts[pt.Rng.Intn(n)]
			if trial%2 == 0 {
				q = testkit.Matrix(pt.Rng, 1, m)[0]
			}
			got := tree.KNN(q, k, exclude)
			want := kdtree.BruteKNN(pts, q, k, exclude)
			if !neighboursEqual(got, want) {
				pt.Errorf("KNN(k=%d) disagrees with brute force:\ntree  %v\nbrute %v", k, got, want)
				return
			}
		}
	})
}

// TestKNNPermutationRelabelling: rebuilding the tree on permuted
// points returns the same neighbours under id relabelling whenever the
// query's distances are tie-free (continuous matrices), because the
// canonical order then reduces to distance order.
func TestKNNPermutationRelabelling(t *testing.T) {
	testkit.Run(t, "kdtree/knn-permutation", 12, func(pt *testkit.T) {
		n := 3*pt.Size + 8
		m := 2 + pt.Rng.Intn(3)
		pts := testkit.Matrix(pt.Rng, n, m)
		p := testkit.Perm(pt.Rng, n)
		tree := kdtree.Build(pts)
		permTree := kdtree.Build(testkit.Permute(p, pts))
		k := 1 + pt.Rng.Intn(n)
		q := testkit.Matrix(pt.Rng, 1, m)[0]
		base := tree.KNN(q, k, nil)
		perm := permTree.KNN(q, k, nil)
		if len(base) != len(perm) {
			pt.Fatalf("neighbour counts differ: %d vs %d", len(base), len(perm))
		}
		for i := range base {
			if perm[i].Dist2 != base[i].Dist2 || p[perm[i].ID] != base[i].ID {
				pt.Errorf("neighbour %d maps to original id %d (dist %v), want id %d (dist %v)",
					i, p[perm[i].ID], perm[i].Dist2, base[i].ID, base[i].Dist2)
				return
			}
		}
	})
}

// TestCentroidMatchesDirectMean: the centroid over a full neighbour
// list equals the running mean computed independently, and an empty
// list yields the zero vector.
func TestCentroidMatchesDirectMean(t *testing.T) {
	testkit.Run(t, "kdtree/centroid", 10, func(pt *testkit.T) {
		n := pt.Size + 2
		m := 1 + pt.Rng.Intn(4)
		pts := testkit.Matrix(pt.Rng, n, m)
		nn := make([]kdtree.Neighbour, n)
		for i := range nn {
			nn[i] = kdtree.Neighbour{ID: i}
		}
		got := kdtree.Centroid(pts, nn, m)
		for j := 0; j < m; j++ {
			sum := 0.0
			for i := range pts {
				sum += pts[i][j]
			}
			if want := sum * (1 / float64(n)); got[j] != want {
				pt.Errorf("centroid[%d] = %v, want %v", j, got[j], want)
				return
			}
		}
		for _, v := range kdtree.Centroid(pts, nil, m) {
			if v != 0 {
				pt.Fatalf("empty neighbour list gave non-zero centroid %v", v)
			}
		}
	})
}

// TestDistProperties: Dist is symmetric, zero on identical vectors,
// and satisfies the triangle inequality (up to one ulp of slack for
// the square-root rounding).
func TestDistProperties(t *testing.T) {
	testkit.Run(t, "kdtree/dist", 12, func(pt *testkit.T) {
		m := 1 + pt.Rng.Intn(5)
		x := testkit.Matrix(pt.Rng, 3, m)
		a, b, c := x[0], x[1], x[2]
		if kdtree.Dist(a, b) != kdtree.Dist(b, a) {
			pt.Errorf("distance not symmetric")
		}
		if kdtree.Dist(a, a) != 0 {
			pt.Errorf("non-zero self distance %v", kdtree.Dist(a, a))
		}
		if kdtree.Dist(a, c) > kdtree.Dist(a, b)+kdtree.Dist(b, c)+1e-12 {
			pt.Errorf("triangle inequality violated: d(a,c)=%v > %v + %v",
				kdtree.Dist(a, c), kdtree.Dist(a, b), kdtree.Dist(b, c))
		}
	})
}
