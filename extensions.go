package transer

import (
	"errors"
	"fmt"

	"transer/internal/cluster"
	"transer/internal/core"
	"transer/internal/dataset"
	"transer/internal/pipeline"
)

// This file exposes the paper's future-work extensions (Section 6),
// the match-clustering post-processing step, and the memoized domain
// store through the public API.

// CacheStats reports a DomainStore's activity: artifact requests
// served from cache (Hits), builds performed (Misses), and the
// approximate resident bytes of memoized artifacts.
type CacheStats = pipeline.Stats

// DomainStore memoizes built-in dataset domain construction — the
// production-reuse extension of the paper's pipeline. Every stage
// artifact (generated databases, candidate pairs, feature matrix,
// labels) is cached under a deterministic fingerprint of (dataset,
// scale, blocking, scheme, seed), and concurrent requests for the same
// artifact are single-flighted so it is built exactly once. Cached
// artifacts are byte-identical to what a rebuild would produce, and
// returned Domains share them: treat every field as read-only.
type DomainStore struct {
	store *pipeline.Store
	// Workers bounds build parallelism (0 = one per CPU). It never
	// affects results, only wall clock.
	Workers int
}

// NewDomainStore returns an empty memoized domain store.
func NewDomainStore() *DomainStore {
	return &DomainStore{store: pipeline.NewStore()}
}

// Domain builds (or fetches) one built-in dataset's blocked, compared
// and labelled domain at the given scale. Valid keys are listed by
// DatasetKeys.
func (s *DomainStore) Domain(key string, scale float64) (*Domain, error) {
	ds, ok := pipeline.DatasetByKey(key)
	if !ok {
		return nil, fmt.Errorf("transer: unknown built-in dataset %q (see DatasetKeys)", key)
	}
	return domainOf(s.store.Domain(pipeline.Request{
		Dataset: ds,
		Scale:   scale,
		Workers: s.Workers,
	})), nil
}

// Stats snapshots the store's cache counters.
func (s *DomainStore) Stats() CacheStats { return s.store.Stats() }

// SourceScore ranks one candidate source domain's transferability.
type SourceScore = core.SourceScore

// RankSources scores labelled candidate source domains against an
// unlabelled target, best first — the "choose the best source domain"
// extension. All domains must share the target's feature space.
func RankSources(sources []*Domain, target *Domain, cfg Config) ([]SourceScore, error) {
	cands := make([]core.Source, 0, len(sources))
	for i, s := range sources {
		if s == nil {
			return nil, fmt.Errorf("transer: nil source at %d", i)
		}
		if !s.Labelled() {
			return nil, fmt.Errorf("transer: source %q has no labels", s.Name)
		}
		cands = append(cands, core.Source{Name: s.Name, X: s.X, Y: s.Y})
	}
	return core.RankSources(cands, target.X, cfg)
}

// TransferMultiSource ranks the candidate sources and transfers from
// the best one.
func TransferMultiSource(sources []*Domain, target *Domain, opts ...TransferOption) (*Result, []SourceScore, error) {
	o := transferOptions{cfg: DefaultConfig(), factory: DefaultClassifier()}
	for _, opt := range opts {
		opt(&o)
	}
	ranking, err := RankSources(sources, target, o.cfg)
	if err != nil {
		return nil, nil, err
	}
	best := sources[ranking[0].Index]
	res, err := Transfer(best, target, opts...)
	if err != nil {
		return nil, ranking, err
	}
	return res, ranking, nil
}

// TargetLabels maps target pair indices (into target.Pairs) to known
// true labels for the partially-labelled-target extension.
type TargetLabels = core.TargetLabels

// TransferSemiSupervised runs TransER with some known target labels
// anchoring the final classifier.
func TransferSemiSupervised(source, target *Domain, known TargetLabels, opts ...TransferOption) (*Result, error) {
	if source == nil || target == nil {
		return nil, errors.New("transer: nil domain")
	}
	if !source.Labelled() {
		return nil, fmt.Errorf("transer: source domain %q has no labels", source.Name)
	}
	o := transferOptions{cfg: DefaultConfig(), factory: DefaultClassifier()}
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunSemiSupervised(source.X, source.Y, target.X, known, o.factory, o.cfg)
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Proba: res.Proba, Stats: res.Stats}, nil
}

// Oracle answers label queries for target pair indices (1 = match).
type Oracle = core.Oracle

// ActiveResult is the outcome of an active-learning transfer.
type ActiveResult struct {
	*Result
	// Queried lists the target pair indices sent to the oracle.
	Queried []int
}

// TransferActive integrates TransER with uncertainty-sampling active
// learning: up to budget oracle queries are spent over the given
// number of rounds on the most uncertain target pairs.
func TransferActive(source, target *Domain, oracle Oracle, budget, rounds int, opts ...TransferOption) (*ActiveResult, error) {
	if source == nil || target == nil {
		return nil, errors.New("transer: nil domain")
	}
	if !source.Labelled() {
		return nil, fmt.Errorf("transer: source domain %q has no labels", source.Name)
	}
	o := transferOptions{cfg: DefaultConfig(), factory: DefaultClassifier()}
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunActive(source.X, source.Y, target.X, o.factory, o.cfg, oracle, budget, rounds)
	if err != nil {
		return nil, err
	}
	return &ActiveResult{
		Result:  &Result{Labels: res.Labels, Proba: res.Proba, Stats: res.Stats},
		Queried: res.Queried,
	}, nil
}

// EntityCluster is one resolved entity after clustering: record
// indices into the target's A and B databases.
type EntityCluster = cluster.Cluster

// ClusterMatches resolves the pairwise prediction into consistent
// entity clusters via transitive closure (the post-processing step of
// Figure 1's pipeline).
func ClusterMatches(res *Result, target *Domain) []EntityCluster {
	edges := cluster.EdgesFromPrediction(target.Pairs, res.Labels, res.Proba)
	return cluster.ConnectedComponents(edges, target.A.NumRecords(), target.B.NumRecords())
}

// OneToOneMatches enforces at most one match per record on each side,
// preferring high-probability pairs — the standard post-processing for
// clean two-database linkage. It returns the retained pairs and the
// corresponding label vector aligned with target.Pairs.
func OneToOneMatches(res *Result, target *Domain) ([]Pair, []int) {
	edges := cluster.EdgesFromPrediction(target.Pairs, res.Labels, res.Proba)
	kept := cluster.GreedyOneToOne(edges)
	pairs := make([]dataset.Pair, len(kept))
	for i, e := range kept {
		pairs[i] = e.Pair
	}
	return pairs, cluster.Labels(target.Pairs, kept)
}
