GO ?= go

.PHONY: build test test-short vet race check golden bench experiments fuzz cover cover-check profile report model serve bench-serve bench-sel bench-query bench-stream bench-repo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full unit-test suite (includes the fast golden-output checks that
# regenerate Table 1, Figure 2 and Figure 5 at full scale).
test:
	$(GO) test ./...

# Quick suite: skips the slow experiment grids (the CI entry point
# together with race).
test-short:
	$(GO) test -short ./...

# Race-detector pass over everything that finishes quickly; the slow
# experiment grids are excluded via testing.Short so this stays within
# a few minutes even on one core.
race:
	$(GO) test -race -short ./...

check: vet test race

# Regenerate the slow full-scale experiments (Table 2/3, Figures 6/7,
# Table 4) in-process and diff them against the checked-in
# *_output.txt files. Takes on the order of an hour on a single core.
golden:
	TRANSER_GOLDEN=1 $(GO) test -run TestGoldenFull -timeout 300m -v ./internal/experiments/

# Reduced-scale experiment benchmarks, including the serial-vs-parallel
# worker sweeps recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Full-scale regeneration of every table and figure.
experiments:
	$(GO) run ./cmd/experiments -exp all

# Machine-readable run report for one experiment (spans + metrics, see
# DESIGN.md §8). Override EXP/SCALE to profile a different workload:
#   make report EXP=table2 SCALE=0.5
EXP ?= table1
SCALE ?= 0.05
report:
	$(GO) run ./cmd/experiments -exp $(EXP) -scale $(SCALE) -metrics-out report-$(EXP).json
	@echo "wrote report-$(EXP).json"

# CPU/heap profiles plus an execution trace for one experiment; inspect
# with `go tool pprof cpu-$(EXP).out` / `go tool trace trace-$(EXP).out`.
profile:
	$(GO) run ./cmd/experiments -exp $(EXP) -scale $(SCALE) \
		-cpuprofile cpu-$(EXP).out -memprofile mem-$(EXP).out -exectrace trace-$(EXP).out
	@echo "wrote cpu-$(EXP).out mem-$(EXP).out trace-$(EXP).out"

# Train on the built-in bibliographic task (dblp-acm → dblp-scholar)
# and export a transer.model/v1 artifact for cmd/serve:
#   make model MODEL=model.json MODEL_SCALE=0.25
MODEL ?= model.json
MODEL_SCALE ?= 0.25
model:
	@mkdir -p .model-data
	$(GO) run ./cmd/datagen -dataset dblp-acm -scale $(MODEL_SCALE) -out .model-data
	$(GO) run ./cmd/datagen -dataset dblp-scholar -scale $(MODEL_SCALE) -out .model-data
	$(GO) run ./cmd/transer \
		-source-a .model-data/dblp-acm-a.csv -source-b .model-data/dblp-acm-b.csv \
		-target-a .model-data/dblp-scholar-a.csv -target-b .model-data/dblp-scholar-b.csv \
		-out .model-data/matches.csv -model-out $(MODEL)
	@echo "wrote $(MODEL)"

# Serve the exported artifact over the JSON HTTP API (trains one first
# if $(MODEL) is absent). See DESIGN.md §9 for the endpoints.
ADDR ?= :8080
serve: $(MODEL)
	$(GO) run ./cmd/serve -model $(MODEL) -addr $(ADDR)

$(MODEL):
	$(MAKE) model MODEL=$(MODEL)

# Serving latency baseline: the in-process benchmarks, then a real
# cmd/serve process replaying single-pair traffic whose shutdown run
# report is condensed into BENCH_serve.json via cmd/benchreport.
bench-serve: $(MODEL)
	$(GO) test -bench 'BenchmarkServe' -benchtime 100x -run '^$$' ./internal/serve/
	$(GO) build -o .model-data/serve-bin ./cmd/serve
	@./.model-data/serve-bin -model $(MODEL) -addr 127.0.0.1:18080 \
		-metrics-out .model-data/serve-report.json & pid=$$!; \
	for i in $$(seq 1 100); do curl -sf http://127.0.0.1:18080/healthz >/dev/null && break; sleep 0.1; done; \
	for i in $$(seq 1 200); do curl -sf -X POST http://127.0.0.1:18080/v1/match -d '{"a":{},"b":{}}' >/dev/null || exit 1; done; \
	kill -TERM $$pid; wait $$pid
	@./.model-data/serve-bin -model $(MODEL) -addr 127.0.0.1:18080 \
		-log-out .model-data/serve-events.jsonl -log-level debug \
		-metrics-out .model-data/serve-report-log.json & pid=$$!; \
	for i in $$(seq 1 100); do curl -sf http://127.0.0.1:18080/healthz >/dev/null && break; sleep 0.1; done; \
	for i in $$(seq 1 200); do curl -sf -X POST http://127.0.0.1:18080/v1/match -d '{"a":{},"b":{}}' >/dev/null || exit 1; done; \
	kill -TERM $$pid; wait $$pid
	$(GO) run ./cmd/benchreport -note "make bench-serve: 200x POST /v1/match against cmd/serve; run 1 logging disabled, run 2 -log-out JSONL at -log-level debug" \
		.model-data/serve-report.json .model-data/serve-report-log.json > BENCH_serve.json
	@echo "wrote BENCH_serve.json"

# Bounded fuzzing smoke: each native fuzz target runs for a short,
# fixed budget on top of its checked-in seed corpus (testdata/fuzz).
# The go tool accepts only one -fuzz target per invocation, hence one
# line per target. Counterexamples land in testdata/fuzz/<Target>/ —
# commit them as regression seeds after fixing the bug they expose.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLevenshtein$$' -fuzztime $(FUZZTIME) ./internal/strutil/
	$(GO) test -run '^$$' -fuzz '^FuzzJaroWinkler$$' -fuzztime $(FUZZTIME) ./internal/strutil/
	$(GO) test -run '^$$' -fuzz '^FuzzCSVDataset$$' -fuzztime $(FUZZTIME) ./internal/dataset/
	$(GO) test -run '^$$' -fuzz '^FuzzVectorKey$$' -fuzztime $(FUZZTIME) ./internal/kdtree/
	$(GO) test -run '^$$' -fuzz '^FuzzIngestRecord$$' -fuzztime $(FUZZTIME) ./internal/stream/
	$(GO) test -run '^$$' -fuzz '^FuzzArtifactDecode$$' -fuzztime $(FUZZTIME) ./internal/model/

# SEL-engine benchmark: the table 2 pipeline once per engine, each run
# condensed into one BENCH_sel.json entry via cmd/benchreport. Compare
# the per-run sel / sel_dedup / sel_build / sel_query phase totals to
# see what each layer buys; DESIGN.md §10 records the contract that the
# exact engines must not change the rendered output while doing so.
#   make bench-sel SEL_SCALE=0.5
SEL_SCALE ?= 0.5
SEL_OUT ?= BENCH_sel.json
bench-sel:
	@mkdir -p .bench-sel
	@for mode in reference dedup exact approx; do \
		echo "== table2 @ $(SEL_SCALE), sel-mode=$$mode"; \
		$(GO) run ./cmd/experiments -exp table2 -scale $(SEL_SCALE) -skip-slow \
			-sel-mode $$mode -metrics-out .bench-sel/sel-$$mode.json >/dev/null || exit 1; \
	done
	$(GO) run ./cmd/benchreport -note "make bench-sel: table2 -skip-slow at scale $(SEL_SCALE), sel-mode reference/dedup/exact/approx" \
		.bench-sel/sel-reference.json .bench-sel/sel-dedup.json \
		.bench-sel/sel-exact.json .bench-sel/sel-approx.json > $(SEL_OUT)
	@echo "wrote $(SEL_OUT)"

# Query-engine benchmark: one batch similarity join per blocking
# strategy (auto plus the three forced operators) at serial and full
# parallelism, each run's operator spans condensed into one
# BENCH_query.json entry via cmd/benchreport. Compare the per-run
# block / compare / score phase totals to see where each strategy
# spends its work; the result sets are identical by the engine's
# determinism contract (DESIGN.md §11).
#   make bench-query QUERY_SCALE=0.3
QUERY_DATASET ?= DBLP-ACM
QUERY_SCALE ?= 0.3
QUERY_OUT ?= BENCH_query.json
bench-query:
	@mkdir -p .bench-query
	@for run in auto-1 auto-0 lsh-0 sn-0 canopy-0; do \
		block=$${run%-*}; workers=$${run#*-}; \
		echo "== query $(QUERY_DATASET) @ $(QUERY_SCALE), block=$$block workers=$$workers"; \
		$(GO) run ./cmd/query -dataset $(QUERY_DATASET) -scale $(QUERY_SCALE) \
			-threshold 0.9 -block $$block -workers $$workers \
			-out /dev/null -metrics-out .bench-query/query-$$run.json || exit 1; \
	done
	$(GO) run ./cmd/benchreport -note "make bench-query: $(QUERY_DATASET) at scale $(QUERY_SCALE), block auto (workers 1/0) then forced lsh/sn/canopy" \
		.bench-query/query-auto-1.json .bench-query/query-auto-0.json \
		.bench-query/query-lsh-0.json .bench-query/query-sn-0.json \
		.bench-query/query-canopy-0.json > $(QUERY_OUT)
	@echo "wrote $(QUERY_OUT)"

# Streaming-store benchmark: replay one builtin pair through the live
# entity store (cmd/stream) across a worker-count sweep, with read-only
# resolve probes, each run's per-record ingest/resolve spans condensed
# into one BENCH_stream.json entry via cmd/benchreport. The store
# fingerprint — and so the final partition — is identical for every
# worker count (DESIGN.md §12); only the scoring wall time moves.
#   make bench-stream STREAM_SCALE=0.3
STREAM_DATASET ?= DBLP-ACM
STREAM_SCALE ?= 0.3
STREAM_OUT ?= BENCH_stream.json
bench-stream:
	@mkdir -p .bench-stream
	@for workers in 1 2 4 0; do \
		echo "== stream $(STREAM_DATASET) @ $(STREAM_SCALE), workers=$$workers"; \
		$(GO) run ./cmd/stream -dataset $(STREAM_DATASET) -scale $(STREAM_SCALE) \
			-threshold 0.6 -workers $$workers -resolve 200 \
			-out .bench-stream/summary-w$$workers.json \
			-metrics-out .bench-stream/stream-w$$workers.json || exit 1; \
	done
	$(GO) run ./cmd/benchreport -note "make bench-stream: replay $(STREAM_DATASET) at scale $(STREAM_SCALE) through the live entity store (cmd/stream), workers 1/2/4/auto, 200 resolve probes" \
		.bench-stream/stream-w1.json .bench-stream/stream-w2.json \
		.bench-stream/stream-w4.json .bench-stream/stream-w0.json > $(STREAM_OUT)
	@echo "wrote $(STREAM_OUT)"

# Model-repository benchmark: one repo bench run (signature build per
# builtin dataset, search latency against synthetic catalogs of 8/64/256
# models, ensemble-vs-single scoring overhead) condensed into
# BENCH_repo.json via cmd/benchreport. The sign/search phases are the
# cost centres DESIGN.md §14 budgets; search must stay linear in
# catalog size and the single-model path free (it delegates).
#   make bench-repo REPO_SCALE=0.25
REPO_SCALE ?= 0.1
REPO_OUT ?= BENCH_repo.json
bench-repo:
	@mkdir -p .bench-repo
	$(GO) run ./cmd/repo bench -scale $(REPO_SCALE) \
		-metrics-out .bench-repo/repo-report.json
	$(GO) run ./cmd/benchreport -note "make bench-repo: repo bench at scale $(REPO_SCALE) — signature build per builtin dataset, search sweep over catalogs of 8/64/256, single-vs-ensemble scoring" \
		.bench-repo/repo-report.json > $(REPO_OUT)
	@echo "wrote $(REPO_OUT)"

# Short-mode coverage over the whole module, with per-function summary.
# CI enforces a floor for internal/core and internal/testkit (the
# property harness must itself stay tested).
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Enforced coverage floors for the packages the testing subsystem most
# depends on. Floors sit ~10 points below measured coverage so routine
# changes pass while a gutted test suite fails loudly.
cover-check:
	@set -e; \
	check() { \
		pkg=$$1; floor=$$2; \
		$(GO) test -short -coverprofile=coverage-$$pkg.out ./internal/$$pkg/ >/dev/null; \
		pct=$$($(GO) tool cover -func=coverage-$$pkg.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		awk -v p=$$pct -v f=$$floor 'BEGIN { exit !(p >= f) }' || { echo "internal/$$pkg below floor"; exit 1; }; \
	}; \
	check core 85.0; \
	check testkit 65.0
