GO ?= go

.PHONY: build test test-short vet race check golden bench experiments fuzz cover cover-check profile report

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full unit-test suite (includes the fast golden-output checks that
# regenerate Table 1, Figure 2 and Figure 5 at full scale).
test:
	$(GO) test ./...

# Quick suite: skips the slow experiment grids (the CI entry point
# together with race).
test-short:
	$(GO) test -short ./...

# Race-detector pass over everything that finishes quickly; the slow
# experiment grids are excluded via testing.Short so this stays within
# a few minutes even on one core.
race:
	$(GO) test -race -short ./...

check: vet test race

# Regenerate the slow full-scale experiments (Table 2/3, Figures 6/7,
# Table 4) in-process and diff them against the checked-in
# *_output.txt files. Takes on the order of an hour on a single core.
golden:
	TRANSER_GOLDEN=1 $(GO) test -run TestGoldenFull -timeout 300m -v ./internal/experiments/

# Reduced-scale experiment benchmarks, including the serial-vs-parallel
# worker sweeps recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Full-scale regeneration of every table and figure.
experiments:
	$(GO) run ./cmd/experiments -exp all

# Machine-readable run report for one experiment (spans + metrics, see
# DESIGN.md §8). Override EXP/SCALE to profile a different workload:
#   make report EXP=table2 SCALE=0.5
EXP ?= table1
SCALE ?= 0.05
report:
	$(GO) run ./cmd/experiments -exp $(EXP) -scale $(SCALE) -metrics-out report-$(EXP).json
	@echo "wrote report-$(EXP).json"

# CPU/heap profiles plus an execution trace for one experiment; inspect
# with `go tool pprof cpu-$(EXP).out` / `go tool trace trace-$(EXP).out`.
profile:
	$(GO) run ./cmd/experiments -exp $(EXP) -scale $(SCALE) \
		-cpuprofile cpu-$(EXP).out -memprofile mem-$(EXP).out -exectrace trace-$(EXP).out
	@echo "wrote cpu-$(EXP).out mem-$(EXP).out trace-$(EXP).out"

# Bounded fuzzing smoke: each native fuzz target runs for a short,
# fixed budget on top of its checked-in seed corpus (testdata/fuzz).
# The go tool accepts only one -fuzz target per invocation, hence one
# line per target. Counterexamples land in testdata/fuzz/<Target>/ —
# commit them as regression seeds after fixing the bug they expose.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLevenshtein$$' -fuzztime $(FUZZTIME) ./internal/strutil/
	$(GO) test -run '^$$' -fuzz '^FuzzJaroWinkler$$' -fuzztime $(FUZZTIME) ./internal/strutil/
	$(GO) test -run '^$$' -fuzz '^FuzzCSVDataset$$' -fuzztime $(FUZZTIME) ./internal/dataset/

# Short-mode coverage over the whole module, with per-function summary.
# CI enforces a floor for internal/core and internal/testkit (the
# property harness must itself stay tested).
cover:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Enforced coverage floors for the packages the testing subsystem most
# depends on. Floors sit ~10 points below measured coverage so routine
# changes pass while a gutted test suite fails loudly.
cover-check:
	@set -e; \
	check() { \
		pkg=$$1; floor=$$2; \
		$(GO) test -short -coverprofile=coverage-$$pkg.out ./internal/$$pkg/ >/dev/null; \
		pct=$$($(GO) tool cover -func=coverage-$$pkg.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		echo "internal/$$pkg coverage: $$pct% (floor $$floor%)"; \
		awk -v p=$$pct -v f=$$floor 'BEGIN { exit !(p >= f) }' || { echo "internal/$$pkg below floor"; exit 1; }; \
	}; \
	check core 85.0; \
	check testkit 65.0
