GO ?= go

.PHONY: build test test-short vet race check golden bench experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full unit-test suite (includes the fast golden-output checks that
# regenerate Table 1, Figure 2 and Figure 5 at full scale).
test:
	$(GO) test ./...

# Quick suite: skips the slow experiment grids (the CI entry point
# together with race).
test-short:
	$(GO) test -short ./...

# Race-detector pass over everything that finishes quickly; the slow
# experiment grids are excluded via testing.Short so this stays within
# a few minutes even on one core.
race:
	$(GO) test -race -short ./...

check: vet test race

# Regenerate the slow full-scale experiments (Table 2/3, Figures 6/7,
# Table 4) in-process and diff them against the checked-in
# *_output.txt files. Takes on the order of an hour on a single core.
golden:
	TRANSER_GOLDEN=1 $(GO) test -run TestGoldenFull -timeout 300m -v ./internal/experiments/

# Reduced-scale experiment benchmarks, including the serial-vs-parallel
# worker sweeps recorded in EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Full-scale regeneration of every table and figure.
experiments:
	$(GO) run ./cmd/experiments -exp all
