module transer

go 1.22
