// Command experiments regenerates the tables and figures of the
// TransER paper's evaluation section (Section 5) on the synthetic data
// set stand-ins.
//
// Usage:
//
//	experiments -exp all                  # everything
//	experiments -exp table2 -scale 0.5    # one experiment at a scale
//	experiments -exp table2 -skip-slow    # drop DTAL* (hours -> minutes)
//	experiments -exp table2 -workers 4    # bound the worker pool
//	experiments -exp all -cache-stats     # report artifact store use
//	experiments -exp table2 -metrics-out report.json   # JSON run report
//	experiments -exp table2 -cpuprofile cpu.pprof \
//	            -memprofile mem.pprof -exectrace trace.out
//
// Experiments: table1, figure2, figure5, table2 (includes table3),
// figure6, figure7, table4, all.
//
// All experiments share one memoized artifact store, so each distinct
// domain is generated, blocked and compared exactly once per run no
// matter how many tables and figures use it; -cache-stats reports the
// hits, misses and memoized bytes after the run.
//
// Every run is traced: -metrics-out writes the hierarchical span tree
// (experiment → grid cell → classifier → SEL/GEN/TCL phase, plus the
// pipeline's per-stage build spans) and the metrics snapshot (store
// hit/miss counters, worker-pool queue-wait/latency/utilisation
// histograms) as a transer.obs.report/v1 JSON document.
//
// All output except the wall-clock lines and the Table 3 runtime
// column is byte-identical for every -workers value (including 1),
// identical whether artifacts come fresh from a build or from the
// store, and identical with observability on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transer/internal/experiments"
	"transer/internal/obs"
	"transer/internal/parallel"
	"transer/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment to run: table1|figure2|figure5|table2|figure6|figure7|table4|all")
		scale      = flag.Float64("scale", 0.5, "data set size scale factor")
		seed       = flag.Int64("seed", 1, "random seed")
		skipSlow   = flag.Bool("skip-slow", false, "skip the slowest baseline (DTAL*)")
		workers    = flag.Int("workers", 0, "max worker goroutines (0 = one per CPU, 1 = serial)")
		selMode    = flag.String("sel-mode", "", "TransER SEL engine: exact|dedup|reference|approx (default exact; all but approx render identical results)")
		cacheStats = flag.Bool("cache-stats", false, "report artifact store hits/misses/bytes after the run")
		metricsOut = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace to `file`")
	)
	flag.Parse()

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	// One tracer and one artifact store for the whole run: every
	// experiment records under the same span tree, and each distinct
	// domain is built exactly once however many tables request it.
	tr := obs.New("experiments")
	parallel.RegisterMetrics(tr.Metrics())
	defer parallel.RegisterMetrics(nil)
	store := pipeline.NewStore()
	store.Instrument(tr)
	opts := experiments.Options{
		Scale: *scale, Seed: *seed, SkipSlow: *skipSlow,
		Workers: *workers, SELMode: *selMode, Store: store, Obs: tr,
	}

	ran := false
	for _, name := range experiments.Names() {
		if *exp != "all" && *exp != name && !(*exp == "table3" && name == "table2") {
			continue
		}
		ran = true
		dur, err := experiments.RunExperiment(os.Stdout, name, opts)
		if err != nil {
			return fmt.Errorf("%s failed: %v", experiments.HeadName(name), err)
		}
		fmt.Printf("-- %s done in %v\n\n", experiments.HeadName(name), dur.Round(time.Millisecond))
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	parallel.PublishStats(tr.Metrics())
	snap := tr.Metrics().Snapshot()
	if *cacheStats {
		fmt.Printf("cache-stats: %d hits, %d misses, %d bytes memoized\n",
			snap.Counters["pipeline.store.hits_total"],
			snap.Counters["pipeline.store.misses_total"],
			int64(snap.Gauges["pipeline.store.bytes"]))
	}
	if *metricsOut != "" {
		report := obs.BuildReport("experiments", os.Args[1:], tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
	}
	return nil
}
