// Command experiments regenerates the tables and figures of the
// TransER paper's evaluation section (Section 5) on the synthetic data
// set stand-ins.
//
// Usage:
//
//	experiments -exp all                  # everything
//	experiments -exp table2 -scale 0.5    # one experiment at a scale
//	experiments -exp table2 -skip-slow    # drop DTAL* (hours -> minutes)
//
// Experiments: table1, figure2, figure5, table2 (includes table3),
// figure6, figure7, table4, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transer/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: table1|figure2|figure5|table2|figure6|figure7|table4|all")
		scale    = flag.Float64("scale", 0.5, "data set size scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		skipSlow = flag.Bool("skip-slow", false, "skip the slowest baseline (DTAL*)")
	)
	flag.Parse()
	opts := experiments.Options{Scale: *scale, Seed: *seed, SkipSlow: *skipSlow}

	run := func(name string, fn func() error) {
		start := time.Now()
		fmt.Printf("== %s (scale %.2f) ==\n", name, *scale)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("table1", func() error {
			t, err := experiments.Table1(opts)
			if err != nil {
				return err
			}
			t.Render(os.Stdout)
			return nil
		})
	}
	if want("figure2") {
		run("figure2", func() error {
			hs, err := experiments.Figure2(opts)
			if err != nil {
				return err
			}
			experiments.RenderHistograms(os.Stdout, hs)
			return nil
		})
	}
	if want("figure5") {
		run("figure5", func() error {
			experiments.RenderDecay(os.Stdout, experiments.Figure5())
			return nil
		})
	}
	if want("table2") || want("table3") {
		run("table2+table3", func() error {
			res, err := experiments.Table2(opts)
			if err != nil {
				return err
			}
			res.QualityTable().Render(os.Stdout)
			fmt.Println()
			res.RuntimeTable().Render(os.Stdout)
			return nil
		})
	}
	if want("figure6") {
		run("figure6", func() error {
			rows, err := experiments.Figure6(opts)
			if err != nil {
				return err
			}
			experiments.SweepTable("Figure 6: sensitivity to labelled source fraction", rows).Render(os.Stdout)
			return nil
		})
	}
	if want("figure7") {
		run("figure7", func() error {
			rows, err := experiments.Figure7(opts)
			if err != nil {
				return err
			}
			experiments.SweepTable("Figure 7: parameter sensitivity (t_c, t_l, t_p, k)", rows).Render(os.Stdout)
			return nil
		})
	}
	if want("table4") {
		run("table4", func() error {
			t, err := experiments.Table4(opts)
			if err != nil {
				return err
			}
			t.Render(os.Stdout)
			return nil
		})
	}
}
