// Command experiments regenerates the tables and figures of the
// TransER paper's evaluation section (Section 5) on the synthetic data
// set stand-ins.
//
// Usage:
//
//	experiments -exp all                  # everything
//	experiments -exp table2 -scale 0.5    # one experiment at a scale
//	experiments -exp table2 -skip-slow    # drop DTAL* (hours -> minutes)
//	experiments -exp table2 -workers 4    # bound the worker pool
//	experiments -exp all -cache-stats     # report artifact store use
//
// Experiments: table1, figure2, figure5, table2 (includes table3),
// figure6, figure7, table4, all.
//
// All experiments share one memoized artifact store, so each distinct
// domain is generated, blocked and compared exactly once per run no
// matter how many tables and figures use it; -cache-stats reports the
// hits, misses and memoized bytes after the run.
//
// All output except the wall-clock lines and the Table 3 runtime
// column is byte-identical for every -workers value (including 1),
// and identical whether artifacts come fresh from a build or from the
// store.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transer/internal/experiments"
	"transer/internal/pipeline"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: table1|figure2|figure5|table2|figure6|figure7|table4|all")
		scale      = flag.Float64("scale", 0.5, "data set size scale factor")
		seed       = flag.Int64("seed", 1, "random seed")
		skipSlow   = flag.Bool("skip-slow", false, "skip the slowest baseline (DTAL*)")
		workers    = flag.Int("workers", 0, "max worker goroutines (0 = one per CPU, 1 = serial)")
		cacheStats = flag.Bool("cache-stats", false, "report artifact store hits/misses/bytes after the run")
	)
	flag.Parse()
	// One artifact store for the whole run: every experiment sharing it
	// builds each distinct domain exactly once, however many tables and
	// figures request it.
	store := pipeline.NewStore()
	opts := experiments.Options{Scale: *scale, Seed: *seed, SkipSlow: *skipSlow, Workers: *workers, Store: store}

	ran := false
	for _, name := range experiments.Names() {
		if *exp != "all" && *exp != name && !(*exp == "table3" && name == "table2") {
			continue
		}
		ran = true
		start := time.Now()
		if err := experiments.RenderExperiment(os.Stdout, name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", experiments.HeadName(name), err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", experiments.HeadName(name), time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *cacheStats {
		st := store.Stats()
		fmt.Printf("cache-stats: %d hits, %d misses, %d bytes memoized\n",
			st.Hits, st.Misses, st.Bytes)
	}
}
