// Command experiments regenerates the tables and figures of the
// TransER paper's evaluation section (Section 5) on the synthetic data
// set stand-ins.
//
// Usage:
//
//	experiments -exp all                  # everything
//	experiments -exp table2 -scale 0.5    # one experiment at a scale
//	experiments -exp table2 -skip-slow    # drop DTAL* (hours -> minutes)
//	experiments -exp table2 -workers 4    # bound the worker pool
//
// Experiments: table1, figure2, figure5, table2 (includes table3),
// figure6, figure7, table4, all.
//
// All output except the wall-clock lines and the Table 3 runtime
// column is byte-identical for every -workers value (including 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transer/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: table1|figure2|figure5|table2|figure6|figure7|table4|all")
		scale    = flag.Float64("scale", 0.5, "data set size scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		skipSlow = flag.Bool("skip-slow", false, "skip the slowest baseline (DTAL*)")
		workers  = flag.Int("workers", 0, "max worker goroutines (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()
	opts := experiments.Options{Scale: *scale, Seed: *seed, SkipSlow: *skipSlow, Workers: *workers}

	ran := false
	for _, name := range experiments.Names() {
		if *exp != "all" && *exp != name && !(*exp == "table3" && name == "table2") {
			continue
		}
		ran = true
		start := time.Now()
		if err := experiments.RenderExperiment(os.Stdout, name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", experiments.HeadName(name), err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v\n\n", experiments.HeadName(name), time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
