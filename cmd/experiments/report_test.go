package main

import (
	"os"
	"path/filepath"
	"testing"

	"transer/internal/obs"
	"transer/internal/testkit"
)

// TestExperimentsMetricsReport is the report verifier CI runs: a real
// miniature experiment must emit a schema-valid transer.obs.report/v1
// document carrying the span hierarchy and store counters the rest of
// the tooling (BENCH_*.json extraction) depends on.
func TestExperimentsMetricsReport(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/experiments")
	path := filepath.Join(t.TempDir(), "report.json")
	testkit.RunBinary(t, bin,
		"-exp", "table1", "-scale", "0.05", "-seed", "1",
		"-skip-slow", "-workers", "2", "-metrics-out", path)

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	if r.Command != "experiments" {
		t.Errorf("command = %q", r.Command)
	}
	if r.WallMS <= 0 {
		t.Errorf("wall_ms = %v", r.WallMS)
	}
	if r.Span.Find("experiment:table1") == nil {
		t.Errorf("report lacks the experiment span")
	}
	if r.Span.Find("pipeline") == nil {
		t.Errorf("report lacks the pipeline stage group span")
	}
	if r.Metrics.Counters["pipeline.store.misses_total"] == 0 {
		t.Errorf("store miss counter missing: %v", r.Metrics.Counters)
	}
	if _, ok := r.Metrics.Histograms["parallel.queue_wait_seconds"]; !ok {
		t.Errorf("parallel queue-wait histogram missing: have %v", keys(r.Metrics.Histograms))
	}
	if _, ok := r.Metrics.Gauges["parallel.tasks_total"]; !ok {
		t.Errorf("parallel stats gauges missing: have %v", keys(r.Metrics.Gauges))
	}
}

// TestExperimentsTable2ReportPhases is the acceptance check for the
// TransER phase spans: a table2 run's report must carry sel/gen/tcl
// under every cell, plus the store counters and pool histograms.
func TestExperimentsTable2ReportPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("method grid too slow for -short")
	}
	bin := testkit.BuildBinary(t, "transer/cmd/experiments")
	path := filepath.Join(t.TempDir(), "report.json")
	testkit.RunBinary(t, bin,
		"-exp", "table2", "-scale", "0.04", "-seed", "1",
		"-skip-slow", "-workers", "2", "-metrics-out", path)

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	exp := r.Span.Find("experiment:table2")
	if exp == nil {
		t.Fatalf("report lacks the experiment:table2 span")
	}
	for _, phase := range []string{"sel", "gen", "tcl"} {
		if exp.Find(phase) == nil {
			t.Errorf("report lacks the %s phase span", phase)
		}
	}
	if r.Metrics.Counters["pipeline.store.hits_total"]+
		r.Metrics.Counters["pipeline.store.misses_total"] == 0 {
		t.Errorf("store hit/miss counters missing: %v", r.Metrics.Counters)
	}
	if h := r.Metrics.Histograms["parallel.queue_wait_seconds"]; h.Count == 0 {
		t.Errorf("parallel queue-wait histogram empty: have %v", keys(r.Metrics.Histograms))
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
