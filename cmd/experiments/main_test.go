package main

import (
	"strings"
	"testing"

	"transer/internal/testkit"
)

func TestExperimentsUnknownExperiment(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/experiments")
	out := testkit.RunBinaryErr(t, bin, "-exp", "table99")
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("want an unknown-experiment diagnostic, got:\n%s", out)
	}
}

// One real experiment at a miniature scale exercises flag plumbing,
// the shared artifact store and the renderer end to end.
func TestExperimentsTable1Miniature(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/experiments")
	out := testkit.RunBinary(t, bin,
		"-exp", "table1", "-scale", "0.05", "-seed", "1",
		"-skip-slow", "-workers", "2", "-cache-stats")
	for _, want := range []string{"done in", "cache-stats:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output lacks %q:\n%s", want, out)
		}
	}
}
