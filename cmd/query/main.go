// Command query runs batch similarity-join queries ("all pairs with
// score ≥ τ") through the planned query engine (internal/query): it
// collects dataset statistics, compiles the Scan → Block → Compare →
// Score → Filter → Limit plan, and executes it over the deterministic
// worker pool.
//
// Usage:
//
//	query -dataset DBLP-ACM -scale 0.3 -threshold 0.9        # builtin pair
//	query -a a.csv -b b.csv -model model.json                # linkage, model-scored
//	query -a a.csv                                           # dedup self-join
//	query -a a.csv -b b.csv -explain                         # print the plan, don't run
//	query -a a.csv -b b.csv -block sn                        # force a strategy
//	query -a a.csv -b b.csv -sim name=smith_waterman         # swap a comparator
//
// Inputs are either a built-in generated dataset pair (-dataset with
// the keys cmd/datagen uses, blocked with its recommended LSH
// configuration) or CSV files in the cmd/datagen format (-a, -b; omit
// -b for dedup). With -model the pair is scored by a transer.model/v1
// artifact exactly as cmd/serve would score it and the threshold
// defaults to the model's decision threshold; without it, scores are
// mean feature similarity. -block forces a blocking strategy — any
// choice yields the same result set, only the work to find it changes.
// -explain prints the EXPLAIN plan rendering and skips execution.
//
// Output (-format json|csv, -out file or stdout) is byte-identical for
// every -workers value. -metrics-out writes a transer.obs.report/v1
// run report with one span per plan operator.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/query"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "query:", err)
		os.Exit(1)
	}
}

// Document is the JSON result of one executed query.
type Document struct {
	Schema     string  `json:"schema"`
	DatasetA   string  `json:"dataset_a"`
	DatasetB   string  `json:"dataset_b,omitempty"`
	SelfJoin   bool    `json:"self_join,omitempty"`
	Strategy   string  `json:"strategy"`
	Scorer     string  `json:"scorer"`
	Threshold  float64 `json:"threshold"`
	Candidates int     `json:"candidates"`
	Count      int     `json:"count"`
	Matches    []Match `json:"matches"`
	Plan       string  `json:"plan"`
}

// Match is one result pair in the JSON document.
type Match struct {
	A     int     `json:"a"`
	B     int     `json:"b"`
	IDA   string  `json:"id_a"`
	IDB   string  `json:"id_b"`
	Score float64 `json:"score"`
}

func run() error {
	var (
		datasetKey = flag.String("dataset", "", "built-in dataset pair key (DBLP-ACM, DBLP-Scholar, MSD, MB, IOS-Bp-Dp, KIL-Bp-Dp, IOS-Bp-Bp, KIL-Bp-Bp)")
		scale      = flag.Float64("scale", 0.3, "size scale factor for -dataset")
		aPath      = flag.String("a", "", "A-side CSV file (cmd/datagen format)")
		bPath      = flag.String("b", "", "B-side CSV file; omitted = dedup self-join of A")
		modelPath  = flag.String("model", "", "score with a transer.model/v1 artifact instead of mean feature similarity")
		threshold  = flag.Float64("threshold", -1, "keep pairs with score >= threshold (default: the model's decision threshold, or 0.85 without -model)")
		limit      = flag.Int("limit", 0, "cap returned matches in deterministic index order (0 = unlimited)")
		blockFlag  = flag.String("block", "auto", "blocking strategy: auto|lsh|sn|canopy (forcing changes the work, never the result)")
		format     = flag.String("format", "json", "output format: json|csv")
		outPath    = flag.String("out", "", "write results to `file` (default stdout)")
		explain    = flag.Bool("explain", false, "print the EXPLAIN plan rendering and skip execution")
		workers    = flag.Int("workers", 0, "worker pool size (0 = one per CPU; output identical for any value)")
		metricsOut = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
		logOut     = flag.String("log-out", "", "write structured JSONL event logs to `file` (\"-\" or \"stderr\" for stderr; empty = logging disabled)")
		logLevel   = flag.String("log-level", "info", "minimum structured log level: debug, info, warn, error")
	)
	sims := map[string]string{}
	flag.Func("sim", "override one attribute's comparator as attr=name (repeatable; names from internal/compare registry)", func(v string) error {
		attr, name, ok := strings.Cut(v, "=")
		if !ok || attr == "" || name == "" {
			return fmt.Errorf("want attr=name, got %q", v)
		}
		sims[attr] = name
		return nil
	})
	flag.Parse()

	force, err := query.ParseStrategy(*blockFlag)
	if err != nil {
		return err
	}
	if *format != "json" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (want json or csv)", *format)
	}

	job := query.Job{Limit: *limit, Force: force, Workers: *workers, Comparators: sims}

	switch {
	case *datasetKey != "" && *aPath != "":
		return errors.New("-dataset and -a are mutually exclusive")
	case *datasetKey != "":
		builtin, ok := lookupBuiltin(*datasetKey)
		if !ok {
			return fmt.Errorf("unknown dataset %q (see cmd/datagen for the keys)", *datasetKey)
		}
		pair := builtin.Make(*scale)
		job.A, job.B, job.LSH = pair.A, pair.B, pair.Blocking
	case *aPath != "":
		if job.A, err = dataset.ReadCSVFile(*aPath, baseName(*aPath)); err != nil {
			return err
		}
		if *bPath != "" {
			if job.B, err = dataset.ReadCSVFile(*bPath, baseName(*bPath)); err != nil {
				return err
			}
		}
	default:
		return errors.New("need an input: -dataset KEY or -a file.csv")
	}

	job.Threshold = *threshold
	if *modelPath != "" {
		if len(sims) > 0 {
			return errors.New("-sim cannot be combined with -model: the artifact fixes the comparison scheme its classifier was trained on")
		}
		m, err := model.LoadMatcher(*modelPath)
		if err != nil {
			return err
		}
		if !m.Schema.Equal(job.A.Schema) {
			return fmt.Errorf("model %q expects attributes %v, dataset has %v", m.Artifact.Name, m.AttributeNames(), job.A.Schema.Names())
		}
		scheme := m.Scheme
		job.Scheme = &scheme
		job.Scorer = m
		job.ScorerLabel = "model:" + m.Artifact.Name
		if job.Threshold < 0 {
			job.Threshold = m.Artifact.Threshold
		}
	} else if job.Threshold < 0 {
		job.Threshold = 0.85
	}

	tr := obs.New("query")
	job.Span, job.Metrics = tr.Root(), tr.Metrics()
	lw, err := obs.OpenLogOutput(*logOut)
	if err != nil {
		return err
	}
	var logger *obs.Logger
	if lw != nil {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(lw, lv)
		logger.Instrument(tr.Metrics())
	}
	// One trace per run: every event this run emits correlates to it.
	runCtx := obs.ContextWithTrace(context.Background(), obs.NewTraceContext())

	planSpan := job.Span.Child("plan")
	plan, err := query.PlanJob(job)
	planSpan.End()
	if err != nil {
		return err
	}
	logger.Info(runCtx, "query.plan",
		obs.FStr("strategy", plan.Block.Strategy.String()),
		obs.FStr("scorer", plan.Scorer),
		obs.FFloat("threshold", job.Threshold))

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	if *explain {
		if _, err := io.WriteString(out, plan.Explain()); err != nil {
			return err
		}
		return finish(lw, tr, *metricsOut)
	}

	res, err := query.Execute(runCtx, job, plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "query: %s: %d candidates, %d matches at threshold %v\n",
		plan.Block.Strategy, res.Candidates, res.Kept, job.Threshold)
	logger.Info(runCtx, "query.done",
		obs.FInt("candidates", int64(res.Candidates)),
		obs.FInt("matches", int64(res.Kept)))

	if *format == "csv" {
		if err := writeCSV(out, res); err != nil {
			return err
		}
	} else if err := writeJSON(out, plan, res, job.Threshold); err != nil {
		return err
	}
	return finish(lw, tr, *metricsOut)
}

// finish flushes the structured log (spanned so run reports account
// for it) and writes the run report.
func finish(lw io.Closer, tr *obs.Tracer, metricsOut string) error {
	if lw != nil {
		lsp := tr.Root().Child("log:flush")
		err := lw.Close()
		lsp.End()
		if err != nil {
			return fmt.Errorf("log close: %w", err)
		}
	}
	return writeReport(metricsOut, tr)
}

// lookupBuiltin resolves a dataset key case-insensitively.
func lookupBuiltin(key string) (datagen.Builtin, bool) {
	if b, ok := datagen.BuiltinByKey(key); ok {
		return b, true
	}
	for _, b := range datagen.Builtins() {
		if strings.EqualFold(b.Key, key) {
			return b, true
		}
	}
	return datagen.Builtin{}, false
}

// baseName derives a database name from a CSV path.
func baseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return strings.TrimSuffix(base, ".csv")
}

func writeJSON(w io.Writer, plan *query.Plan, res *query.Result, threshold float64) error {
	doc := Document{
		Schema:     query.PlanSchemaVersion,
		DatasetA:   plan.NameA,
		SelfJoin:   plan.SelfJoin,
		Strategy:   plan.Block.Strategy.String(),
		Scorer:     plan.Scorer,
		Threshold:  threshold,
		Candidates: res.Candidates,
		Count:      res.Kept,
		Matches:    make([]Match, len(res.Matches)),
		Plan:       plan.Explain(),
	}
	if !plan.SelfJoin {
		doc.DatasetB = plan.NameB
	}
	for i, m := range res.Matches {
		doc.Matches[i] = Match{A: m.A, B: m.B, IDA: m.IDA, IDB: m.IDB, Score: m.Score}
	}
	return writeIndentedJSON(w, doc)
}

func writeIndentedJSON(w io.Writer, doc Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func writeCSV(w io.Writer, res *query.Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"a", "b", "id_a", "id_b", "score"}); err != nil {
		return err
	}
	for _, m := range res.Matches {
		row := []string{
			strconv.Itoa(m.A), strconv.Itoa(m.B), m.IDA, m.IDB,
			strconv.FormatFloat(m.Score, 'f', 6, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeReport(path string, tr *obs.Tracer) error {
	if path == "" {
		return nil
	}
	report := obs.BuildReport("query", os.Args[1:], tr)
	return report.WriteFile(path)
}
