package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/obs"
	"transer/internal/testkit"
)

// TestQueryExplain checks the EXPLAIN rendering: schema line, one cost
// estimate per strategy, and a chosen line — without executing.
func TestQueryExplain(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/query")
	out := testkit.RunBinary(t, bin, "-dataset", "dblp-acm", "-scale", "0.1", "-explain")
	for _, want := range []string{
		"plan: transer.query/v1",
		"est lsh",
		"est sorted-neighbourhood",
		"est canopy",
		"chosen   ",
		"filter   score >= 0.85",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "matches") {
		t.Errorf("-explain must not execute the query:\n%s", out)
	}
}

// TestQueryForcedStrategiesAgree is the binary-level check of the
// engine's central contract: forcing any blocking strategy changes the
// work, not the result. All three forced runs — across different
// worker counts, exercising worker invariance in the same sweep — must
// produce byte-identical CSV output.
func TestQueryForcedStrategiesAgree(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/query")
	dir := t.TempDir()

	var want []byte
	for i, run := range []struct {
		block   string
		workers string
	}{
		{"lsh", "1"}, {"sn", "3"}, {"canopy", "0"}, {"auto", "2"},
	} {
		path := filepath.Join(dir, run.block+".csv")
		stderr := testkit.RunBinary(t, bin,
			"-dataset", "DBLP-ACM", "-scale", "0.1", "-threshold", "0.9",
			"-block", run.block, "-workers", run.workers,
			"-format", "csv", "-out", path)
		if !strings.Contains(stderr, "candidates") {
			t.Fatalf("block=%s: no summary line:\n%s", run.block, stderr)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("block=%s: %v", run.block, err)
		}
		if len(strings.Split(strings.TrimSpace(string(got)), "\n")) < 2 {
			t.Fatalf("block=%s found no matches; the test is vacuous:\n%s", run.block, got)
		}
		if i == 0 {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Errorf("block=%s workers=%s: result differs from forced lsh", run.block, run.workers)
		}
	}
}

// TestQueryComparatorOverride swaps one attribute's comparator from
// the registry and checks it lands in the plan's feature list.
func TestQueryComparatorOverride(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/query")
	out := testkit.RunBinary(t, bin, "-dataset", "dblp-acm", "-scale", "0.05",
		"-sim", "authors=smith_waterman", "-explain")
	if !strings.Contains(out, "authors_smith_waterman") {
		t.Errorf("overridden comparator missing from plan features:\n%s", out)
	}
}

// TestQueryMetricsReport validates the run report: a plan span plus
// one span per executed operator, and the engine counters.
func TestQueryMetricsReport(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/query")
	report := filepath.Join(t.TempDir(), "report.json")
	testkit.RunBinary(t, bin, "-dataset", "dblp-acm", "-scale", "0.05",
		"-threshold", "0.9", "-metrics-out", report)
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	for _, name := range []string{"plan", "scan", "compare", "score", "filter"} {
		if r.Span.Find(name) == nil {
			t.Errorf("report lacks the %s span", name)
		}
	}
	blocked := false
	for _, c := range r.Span.Children {
		if strings.HasPrefix(c.Name, "block:") {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("report lacks a block:<strategy> span; tree: %+v", r.Span)
	}
	for _, counter := range []string{"query.candidates_total", "query.compared_rows_total"} {
		if r.Metrics.Counters[counter] == 0 {
			t.Errorf("counter %s missing: %v", counter, r.Metrics.Counters)
		}
	}
}

// TestQueryFlagValidation covers the CLI's mutually-exclusive and
// unknown-input diagnostics.
func TestQueryFlagValidation(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/query")
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{}, "need an input"},
		{[]string{"-dataset", "no-such-set"}, "unknown dataset"},
		{[]string{"-dataset", "mb", "-a", "x.csv"}, "mutually exclusive"},
		{[]string{"-dataset", "mb", "-block", "bogus"}, "unknown blocking strategy"},
		{[]string{"-dataset", "mb", "-format", "xml"}, "unknown -format"},
		{[]string{"-dataset", "mb", "-model", "m.json", "-sim", "name=jaccard"}, "cannot be combined"},
	} {
		out := testkit.RunBinaryErr(t, bin, tc.args...)
		if !strings.Contains(out, tc.want) {
			t.Errorf("args %v: want %q in output, got:\n%s", tc.args, tc.want, out)
		}
	}
}
