package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/obs"
	"transer/internal/testkit"
)

func TestSummarize(t *testing.T) {
	tr := obs.New("experiments")
	pipe := tr.Root().Child("pipeline")
	pipe.Child("generate:msd@0.50").End()
	pipe.Child("block:msd@0.50").End()
	exp := tr.Root().Child("experiment:table2")
	for _, cell := range []string{"cell:A", "cell:B"} {
		c := exp.Child(cell)
		sel := c.Child("sel")
		sel.Child("sel_dedup").End()
		sel.Child("sel_build").End()
		sel.Child("sel_query").End()
		sel.End()
		gen := c.Child("gen")
		gen.Child("fit").End()
		gen.Child("predict").End()
		gen.End()
		c.Child("tcl").End()
		c.End()
	}
	// A third cell whose selection came from the memo: its sel span
	// carries only a sel_cache child (see core.SelectInstances).
	hit := exp.Child("cell:C")
	hitSel := hit.Child("sel")
	hitSel.Child("sel_cache").End()
	hitSel.End()
	hit.Child("gen").End()
	hit.Child("tcl").End()
	hit.End()
	exp.End()

	run := Summarize(obs.BuildReport("experiments", []string{"-exp", "table2"}, tr))
	if run.Cells != 3 {
		t.Errorf("cells = %d, want 3", run.Cells)
	}
	wantCounts := map[string]int{
		"sel": 3, "gen": 3, "tcl": 3, "fit": 2, "predict": 2,
		"sel_dedup": 2, "sel_build": 2, "sel_query": 2, "sel_cache": 1,
		"generate": 1, "block": 1,
	}
	for phase, want := range wantCounts {
		if got := run.Phases[phase].Count; got != want {
			t.Errorf("phase %s count = %d, want %d", phase, got, want)
		}
	}
	if _, ok := run.Phases["cell"]; ok {
		t.Errorf("cell spans must not be aggregated as a phase")
	}
	if _, ok := run.Phases["experiment"]; ok {
		t.Errorf("experiment span must not be aggregated as a phase")
	}
}

func TestBenchreportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	tr := obs.New("experiments")
	tr.Root().Child("experiment:table2").Child("cell:A").Child("sel").End()
	if err := obs.BuildReport("experiments", nil, tr).WriteFile(report); err != nil {
		t.Fatal(err)
	}
	bin := testkit.BuildBinary(t, "transer/cmd/benchreport")
	out := testkit.RunBinary(t, bin, "-note", "unit test", report)
	var bench Bench
	if err := json.Unmarshal([]byte(out), &bench); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if bench.Schema != BenchSchemaVersion || bench.Note != "unit test" {
		t.Fatalf("header = %+v", bench)
	}
	if len(bench.Runs) != 1 || bench.Runs[0].Phases["sel"].Count != 1 {
		t.Fatalf("runs = %+v", bench.Runs)
	}

	// Garbage input must fail loudly, not emit an empty summary.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut := testkit.RunBinaryErr(t, bin, bad)
	if !strings.Contains(errOut, "benchreport:") {
		t.Fatalf("want a benchreport error, got:\n%s", errOut)
	}
}

// TestSummarizeServeReport: cmd/serve request spans aggregate per
// route so match and batch latency totals stay separable.
func TestSummarizeServeReport(t *testing.T) {
	tr := obs.New("serve")
	tr.Root().Child("request:match").End()
	tr.Root().Child("request:match").End()
	tr.Root().Child("request:batch").End()
	run := Summarize(obs.BuildReport("serve", nil, tr))
	if got := run.Phases["request:match"].Count; got != 2 {
		t.Errorf("request:match count = %d, want 2", got)
	}
	if got := run.Phases["request:batch"].Count; got != 1 {
		t.Errorf("request:batch count = %d, want 1", got)
	}
	if _, ok := run.Phases["request"]; ok {
		t.Errorf("request spans must not be lumped under one phase")
	}
}
