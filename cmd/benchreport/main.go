// Command benchreport condenses transer.obs.report/v1 run reports
// (the -metrics-out output of cmd/experiments and friends) into the
// BENCH_*.json perf-trajectory format: per-phase wall-time totals per
// run, ready to diff across commits.
//
// Usage:
//
//	experiments -exp table2 -scale 0.5 -workers 1 -metrics-out w1.json
//	experiments -exp table2 -scale 0.5 -workers 0 -metrics-out wN.json
//	benchreport -note "host: ..." w1.json wN.json > BENCH_table2.json
//
// For every report, the tool walks the span tree and sums durations by
// phase: the TransER phases (sel, gen, tcl and their fit/predict
// children) and the pipeline stages (generate, block, compare, label;
// stage spans are named "stage:dataset@scale", aggregated by stage).
// Reports from cmd/serve aggregate too: its request spans keep their
// route ("request:match", "request:batch") so the two endpoints stay
// separable in the summary. Reports from cmd/query contribute the
// query-engine operator phases (plan, scan, block, compare, score,
// filter); "block:<strategy>" spans fold into the shared "block"
// phase. Reports from cmd/stream contribute the streaming phases
// (ingest, resolve), one span per record, so BENCH_stream.json
// carries per-record latency as TotalMS / Count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"transer/internal/obs"
)

// BenchSchemaVersion identifies the summary format.
const BenchSchemaVersion = "transer.obs.bench/v1"

// Bench is the checked-in BENCH_*.json document.
type Bench struct {
	Schema string     `json:"schema"`
	Note   string     `json:"note,omitempty"`
	Runs   []BenchRun `json:"runs"`
}

// BenchRun summarises one run report.
type BenchRun struct {
	Args       []string         `json:"args,omitempty"`
	GoVersion  string           `json:"go_version"`
	NumCPU     int              `json:"num_cpu"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	WallMS     float64          `json:"wall_ms"`
	Cells      int              `json:"cells"`
	Phases     map[string]Phase `json:"phases"`
}

// Phase is the aggregate over every span of one phase.
type Phase struct {
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// phases lists the span names aggregated into the summary; pipeline
// stage spans carry a ":dataset@scale" suffix stripped by baseName.
var phases = map[string]bool{
	"sel": true, "gen": true, "tcl": true,
	"fit": true, "predict": true,
	// SEL sub-phases (DESIGN.md §10): the selector's dedup, index
	// build and query stages, so BENCH_sel.json can attribute the fast
	// path's win per layer. They nest under "sel" and also aggregate
	// into it, like fit/predict under gen/tcl.
	"sel_dedup": true, "sel_build": true, "sel_query": true,
	// SEL cache hits (Config.SELCache): counts how many grid cells
	// skipped selection entirely via the memo.
	"sel_cache": true,
	"generate":  true, "block": true, "compare": true, "label": true,
	"request": true,
	// Query-engine operators (cmd/query -metrics-out): planning plus
	// the executed plan's Scan → Block → Compare → Score → Filter
	// stages. Block spans are named "block:<strategy>" and fold into
	// the shared "block" phase via baseName.
	"plan": true, "scan": true, "score": true, "filter": true,
	// Streaming entity store (cmd/stream -metrics-out): one span per
	// ingested record and per read-only resolve probe, so Count is the
	// record count and TotalMS/Count the per-record latency.
	"ingest": true, "resolve": true,
	// Model repository (cmd/repo bench -metrics-out): signature build
	// per builtin dataset ("sign:<key>"), search sweeps over synthetic
	// catalogs ("search:<size>") and the artifact training that feeds
	// the ensemble comparison ("train:pair"). The score phase above
	// covers the single-vs-ensemble scoring rows.
	"sign": true, "search": true, "train": true,
	// Observability phases: "log:flush" is the structured-log shutdown
	// flush every binary spans when -log-out is set; "trace" covers
	// trace-capture maintenance spans; "explain" covers provenance
	// assembly on ?explain=1 requests. Their cost is what the
	// log-enabled vs log-disabled rows of BENCH_serve.json compare.
	"log": true, "trace": true, "explain": true,
}

func baseName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// Summarize condenses one validated report into a BenchRun.
func Summarize(r *obs.Report) BenchRun {
	run := BenchRun{
		Args:       r.Args,
		GoVersion:  r.GoVersion,
		NumCPU:     r.NumCPU,
		GOMAXPROCS: r.GOMAXPROCS,
		WallMS:     r.WallMS,
		Phases:     map[string]Phase{},
	}
	r.Span.Walk(func(n *obs.SpanNode) {
		base := baseName(n.Name)
		if base == "cell" {
			run.Cells++
		}
		if !phases[base] {
			return
		}
		key := base
		if base == "request" {
			// Serve request spans aggregate per route, not lumped.
			key = n.Name
		}
		p := run.Phases[key]
		p.Count++
		p.TotalMS += n.DurMS
		run.Phases[key] = p
	})
	return run
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run() error {
	note := flag.String("note", "", "free-form capture-environment note embedded in the summary")
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("usage: benchreport [-note ...] report.json...")
	}
	bench := Bench{Schema: BenchSchemaVersion, Note: *note}
	for _, path := range flag.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		r, err := obs.ValidateReportBytes(b)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		bench.Runs = append(bench.Runs, Summarize(r))
	}
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(out))
	return err
}
