package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/compare"
	"transer/internal/ml/logreg"
	"transer/internal/model"
	"transer/internal/repo"
	"transer/internal/testkit"
)

// writeSignedArtifact trains a small artifact with an embedded domain
// signature and writes it to path, returning its fingerprint.
func writeSignedArtifact(t *testing.T, seed int64, name, path string) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, b := testkit.DatabasePair(rng, 25)
	scheme := compare.DefaultScheme(a.Schema)
	var x [][]float64
	var y []int
	for _, ra := range a.Records {
		for _, rb := range b.Records {
			x = append(x, scheme.Pair(ra, rb))
			if ra.EntityID == rb.EntityID {
				y = append(y, 1)
			} else {
				y = append(y, 0)
			}
		}
	}
	clf := logreg.New(logreg.Config{})
	if err := clf.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	art, err := model.New(name, clf, a.Schema, scheme)
	if err != nil {
		t.Fatalf("model.New: %v", err)
	}
	art.Provenance.Signature = repo.BuildSignature(a, b, x)
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	fp, err := art.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestRepoCLILifecycle drives the whole catalog lifecycle through the
// binary: add two artifacts, list them, compute a target signature
// with sign, search and select against it, and evict.
func TestRepoCLILifecycle(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/repo")
	dir := t.TempDir()
	cat := filepath.Join(dir, "catalog")

	m1 := filepath.Join(dir, "m1.json")
	m2 := filepath.Join(dir, "m2.json")
	fp1 := writeSignedArtifact(t, 1, "first", m1)
	fp2 := writeSignedArtifact(t, 2, "second", m2)

	out := testkit.RunBinary(t, bin, "add", "-dir", cat, m1, m2)
	for _, fp := range []string{fp1, fp2} {
		if !strings.Contains(out, fp) {
			t.Fatalf("add output lacks %s:\n%s", fp[:12], out)
		}
	}

	// Re-adding is a no-op (content addressing).
	testkit.RunBinary(t, bin, "add", "-dir", cat, m1)

	var list struct {
		Schema string       `json:"schema"`
		Models []repo.Entry `json:"models"`
	}
	out = testkit.RunBinary(t, bin, "list", "-dir", cat)
	if err := json.Unmarshal(findJSON(t, out), &list); err != nil {
		t.Fatalf("list output: %v\n%s", err, out)
	}
	if list.Schema != repo.IndexSchemaVersion || len(list.Models) != 2 {
		t.Fatalf("list: %+v", list)
	}

	// Sign the first model's training domain stand-in: a builtin pair
	// at tiny scale gives a syntactically valid probe; ranking against
	// artifact signatures from a different generator is exercised in
	// internal/repo. Here the probe IS m1's signature file extracted
	// via search -signature, so first must rank first.
	sigPath := filepath.Join(dir, "target-sig.json")
	art, err := model.Load(m1)
	if err != nil {
		t.Fatal(err)
	}
	sigDoc, err := json.Marshal(art.Provenance.Signature)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sigPath, sigDoc, 0o644); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Selector string        `json:"selector"`
		Members  []repo.Member `json:"members"`
		Ranking  []struct {
			Entry repo.Entry `json:"entry"`
			Score float64    `json:"score"`
		} `json:"ranking"`
	}
	out = testkit.RunBinary(t, bin, "search", "-dir", cat, "-signature", sigPath)
	if err := json.Unmarshal(findJSON(t, out), &doc); err != nil {
		t.Fatalf("search output: %v\n%s", err, out)
	}
	if len(doc.Ranking) != 2 || doc.Ranking[0].Entry.Fingerprint != fp1 {
		t.Fatalf("search did not rank the probe's own model first: %+v", doc.Ranking)
	}
	if doc.Ranking[0].Score != 1 {
		t.Fatalf("self-probe score %v, want 1", doc.Ranking[0].Score)
	}

	out = testkit.RunBinary(t, bin, "select", "-dir", cat, "-signature", sigPath, "-k", "2")
	if err := json.Unmarshal(findJSON(t, out), &doc); err != nil {
		t.Fatalf("select output: %v\n%s", err, out)
	}
	if len(doc.Members) != 2 || doc.Members[0].Fingerprint != fp1 {
		t.Fatalf("select members: %+v", doc.Members)
	}
	if _, err := repo.ParseSelector(doc.Selector); err != nil {
		t.Fatalf("select emitted unparseable selector %q: %v", doc.Selector, err)
	}

	// sign a builtin dataset end to end (the probe-from-CSV path is
	// the same code behind -a/-b).
	out = testkit.RunBinary(t, bin, "sign", "-dataset", "DBLP-ACM", "-scale", "0.05")
	var sig model.Signature
	if err := json.Unmarshal(findJSON(t, out), &sig); err != nil {
		t.Fatalf("sign output: %v\n%s", err, out)
	}
	if sig.Schema != model.SignatureSchemaVersion || sig.Records == 0 || len(sig.TokenHashes) == 0 {
		t.Fatalf("sign produced a hollow signature: %+v records=%d", sig.Schema, sig.Records)
	}

	testkit.RunBinary(t, bin, "evict", "-dir", cat, "second")
	out = testkit.RunBinary(t, bin, "list", "-dir", cat)
	if err := json.Unmarshal(findJSON(t, out), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Fingerprint != fp1 {
		t.Fatalf("after evict: %+v", list.Models)
	}
}

// findJSON returns the first top-level JSON object in mixed
// stderr/stdout output (RunBinary merges the streams).
func findJSON(t *testing.T, out string) []byte {
	t.Helper()
	i := strings.IndexByte(out, '{')
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	return []byte(out[i:])
}
