// Command repo manages a model repository: a content-addressed catalog
// of transer.model/v1 artifacts (internal/repo) searchable by domain
// signature, from which cmd/serve picks source models for new
// unlabelled target domains.
//
// Usage:
//
//	repo add -dir models/ model.json [more.json ...]   catalogue artifacts
//	repo list -dir models/                             list the catalog
//	repo sign -a a.csv [-b b.csv]                      compute a domain signature
//	repo sign -dataset DBLP-ACM -scale 0.25            ... of a builtin pair
//	repo search -dir models/ -dataset MB               rank models against a target
//	repo select -dir models/ -a a.csv -b b.csv -k 2    pick a model / ensemble
//	repo evict -dir models/ <fingerprint|name>         remove a model
//	repo bench [-scale 0.1] [-metrics-out report.json] repository benchmark
//
// The catalog directory holds one artifact file per model under
// models/<fingerprint>.json plus an atomically swapped index.json
// cache; deleting the index loses nothing (it is rebuilt by scanning
// the artifacts). Targets for search/select come as CSV files (-a/-b,
// cmd/datagen format), a builtin dataset pair (-dataset/-scale), or a
// precomputed transer.signature/v1 document (-signature, as written by
// repo sign). All output is JSON on stdout; rankings are deterministic
// for every -workers value.
//
// repo select prints the chosen selector ("fp" or "fp@w,fp@w"),
// directly usable as the model= parameter of cmd/serve's scoring
// endpoints.
//
// repo bench measures the three repository cost centres — signature
// build per builtin dataset, search latency against synthetic catalogs
// of growing size, and ensemble-vs-single scoring overhead — and
// writes a transer.obs.report/v1 run report (-metrics-out) for
// cmd/benchreport to condense.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	transer "transer"
	"transer/internal/blocking"
	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/repo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: repo <add|list|sign|search|select|evict|bench> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "add":
		return runAdd(rest)
	case "list":
		return runList(rest)
	case "sign":
		return runSign(rest)
	case "search":
		return runSearch(rest, false)
	case "select":
		return runSearch(rest, true)
	case "evict":
		return runEvict(rest)
	case "bench":
		return runBench(rest)
	default:
		return fmt.Errorf("unknown command %q (want add, list, sign, search, select, evict or bench)", cmd)
	}
}

// targetFlags are the shared flags describing a target domain for
// sign, search and select.
type targetFlags struct {
	aPath, bPath string
	datasetKey   string
	scale        float64
	sigPath      string
	workers      int
}

func (t *targetFlags) register(fs *flag.FlagSet, withSig bool) {
	fs.StringVar(&t.aPath, "a", "", "A-side CSV file (cmd/datagen format)")
	fs.StringVar(&t.bPath, "b", "", "B-side CSV file; omitted = dedup view of A")
	fs.StringVar(&t.datasetKey, "dataset", "", "built-in dataset pair key (see cmd/datagen)")
	fs.Float64Var(&t.scale, "scale", 0.25, "size scale factor for -dataset")
	if withSig {
		fs.StringVar(&t.sigPath, "signature", "", "precomputed transer.signature/v1 `file` (from repo sign)")
	}
	fs.IntVar(&t.workers, "workers", 0, "worker pool size (0 = one per CPU; output identical for any value)")
}

// signature resolves the flags to the target domain's signature.
func (t *targetFlags) signature(ctx context.Context) (*model.Signature, error) {
	set := 0
	for _, on := range []bool{t.aPath != "", t.datasetKey != "", t.sigPath != ""} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, errors.New("need exactly one target: -a file.csv, -dataset KEY, or -signature sig.json")
	}
	switch {
	case t.sigPath != "":
		b, err := os.ReadFile(t.sigPath)
		if err != nil {
			return nil, err
		}
		var sig model.Signature
		if err := json.Unmarshal(b, &sig); err != nil {
			return nil, fmt.Errorf("%s: %w", t.sigPath, err)
		}
		if err := sig.Validate(); err != nil {
			return nil, fmt.Errorf("%s: %w", t.sigPath, err)
		}
		return &sig, nil
	case t.datasetKey != "":
		builtin, ok := datagen.BuiltinByKey(t.datasetKey)
		if !ok {
			return nil, fmt.Errorf("unknown dataset %q (see cmd/datagen for the keys)", t.datasetKey)
		}
		pair := builtin.Make(t.scale)
		return repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, t.workers)
	default:
		a, err := dataset.ReadCSVFile(t.aPath, baseName(t.aPath))
		if err != nil {
			return nil, err
		}
		var b *dataset.Database
		if t.bPath != "" {
			if b, err = dataset.ReadCSVFile(t.bPath, baseName(t.bPath)); err != nil {
				return nil, err
			}
		}
		return repo.SignatureOf(ctx, a, b, blocking.MinHashConfig{}, t.workers)
	}
}

func baseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return strings.TrimSuffix(base, ".csv")
}

// openCatalog opens -dir, treating "invalid artifacts skipped" as a
// warning (the valid remainder is served) but a nil catalog as fatal.
func openCatalog(dir string) (*repo.Catalog, error) {
	if dir == "" {
		return nil, errors.New("missing required flag -dir")
	}
	c, err := repo.Open(dir)
	if err != nil {
		if c == nil {
			return nil, err
		}
		fmt.Fprintln(os.Stderr, "repo:", err)
	}
	return c, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runAdd(args []string) error {
	fs := flag.NewFlagSet("repo add", flag.ExitOnError)
	dir := fs.String("dir", "", "catalog `directory`")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return errors.New("usage: repo add -dir DIR artifact.json [more.json ...]")
	}
	c, err := openCatalog(*dir)
	if err != nil {
		return err
	}
	var added []repo.Entry
	for _, path := range fs.Args() {
		e, err := c.AddFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		added = append(added, e)
		fmt.Fprintf(os.Stderr, "repo: added %s (%s)\n", e.Name, e.Fingerprint[:12])
	}
	return printJSON(struct {
		Schema string       `json:"schema"`
		Added  []repo.Entry `json:"added"`
	}{repo.IndexSchemaVersion, added})
}

func runList(args []string) error {
	fs := flag.NewFlagSet("repo list", flag.ExitOnError)
	dir := fs.String("dir", "", "catalog `directory`")
	fs.Parse(args)
	c, err := openCatalog(*dir)
	if err != nil {
		return err
	}
	return printJSON(struct {
		Schema string       `json:"schema"`
		Models []repo.Entry `json:"models"`
	}{repo.IndexSchemaVersion, c.List()})
}

func runSign(args []string) error {
	fs := flag.NewFlagSet("repo sign", flag.ExitOnError)
	var tf targetFlags
	tf.register(fs, false)
	out := fs.String("out", "", "write the signature to `file` (default stdout)")
	fs.Parse(args)
	sig, err := tf.signature(context.Background())
	if err != nil {
		return err
	}
	if *out != "" {
		b, err := json.MarshalIndent(sig, "", "  ")
		if err != nil {
			return err
		}
		return model.AtomicWriteFile(*out, append(b, '\n'))
	}
	return printJSON(sig)
}

// SearchDocument is the JSON output of repo search / repo select.
type SearchDocument struct {
	Schema string `json:"schema"`
	// Selector is the chosen model selector (select only): "fp" or
	// "fp@w,fp@w", directly usable as cmd/serve's model= parameter.
	Selector string        `json:"selector,omitempty"`
	Members  []repo.Member `json:"members,omitempty"`
	Ranking  []repo.Ranked `json:"ranking"`
}

func runSearch(args []string, selecting bool) error {
	name := "repo search"
	if selecting {
		name = "repo select"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	dir := fs.String("dir", "", "catalog `directory`")
	limit := fs.Int("limit", 0, "cap the ranking (0 = all)")
	k := fs.Int("k", 1, "ensemble size for select (1 = single best model)")
	var tf targetFlags
	tf.register(fs, true)
	fs.Parse(args)
	c, err := openCatalog(*dir)
	if err != nil {
		return err
	}
	sig, err := tf.signature(context.Background())
	if err != nil {
		return err
	}
	ranking := c.Search(sig, *limit, tf.workers)
	doc := SearchDocument{Schema: repo.IndexSchemaVersion, Ranking: ranking}
	if selecting {
		members := repo.Select(ranking, *k)
		if len(members) == 0 {
			return fmt.Errorf("no catalogued model matches the target domain (%d models searched)", c.Len())
		}
		doc.Members = members
		doc.Selector = repo.FormatSelector(members)
		fmt.Fprintf(os.Stderr, "repo: selected %s\n", doc.Selector)
	}
	return printJSON(doc)
}

func runEvict(args []string) error {
	fs := flag.NewFlagSet("repo evict", flag.ExitOnError)
	dir := fs.String("dir", "", "catalog `directory`")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("usage: repo evict -dir DIR <fingerprint|prefix|name>")
	}
	c, err := openCatalog(*dir)
	if err != nil {
		return err
	}
	e, err := c.Evict(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "repo: evicted %s (%s)\n", e.Name, e.Fingerprint[:12])
	return printJSON(struct {
		Schema  string     `json:"schema"`
		Evicted repo.Entry `json:"evicted"`
	}{repo.IndexSchemaVersion, e})
}

// runBench measures the repository's three cost centres under one obs
// run report: signature build per builtin dataset, search latency
// against synthetic catalogs of growing size, and ensemble-vs-single
// scoring overhead on a trained pair of models.
func runBench(args []string) error {
	fs := flag.NewFlagSet("repo bench", flag.ExitOnError)
	scale := fs.Float64("scale", 0.1, "dataset size scale factor")
	sizes := fs.String("sizes", "8,64,256", "comma-separated synthetic catalog sizes for the search sweep")
	iters := fs.Int("iters", 20, "search iterations per catalog size")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	metricsOut := fs.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
	fs.Parse(args)

	tr := obs.New("repo")
	ctx := context.Background()

	// Phase 1: signature build cost per builtin dataset.
	sigs := make(map[string]*model.Signature)
	for _, b := range datagen.Builtins() {
		pair := b.Make(*scale)
		sp := tr.Root().Child("sign:" + b.Key)
		sig, err := repo.SignatureOf(ctx, pair.A, pair.B, pair.Blocking, *workers)
		if err != nil {
			return err
		}
		sp.SetInt("records", int64(sig.Records))
		sp.SetInt("pairs", int64(sig.Pairs))
		sp.SetInt("centroids", int64(len(sig.Centroids)))
		sp.End()
		sigs[b.Key] = sig
		fmt.Fprintf(os.Stderr, "repo bench: signed %s (%d records, %d pairs)\n", b.Key, sig.Records, sig.Pairs)
	}

	// Phase 2: search latency vs catalog size. Synthetic catalogs
	// replicate the real signatures under distinct fingerprints, so
	// per-entry similarity work matches a catalog of real models.
	target := sigs["DBLP-Scholar"]
	base := datagen.Builtins()
	for _, szStr := range strings.Split(*sizes, ",") {
		var size int
		if _, err := fmt.Sscanf(strings.TrimSpace(szStr), "%d", &size); err != nil || size <= 0 {
			return fmt.Errorf("bad -sizes entry %q", szStr)
		}
		entries := make([]repo.Entry, size)
		for i := range entries {
			b := base[i%len(base)]
			entries[i] = repo.Entry{
				Fingerprint: fmt.Sprintf("%064x", i+1),
				Name:        fmt.Sprintf("%s#%d", b.Key, i),
				Signature:   sigs[b.Key],
			}
		}
		sp := tr.Root().Child(fmt.Sprintf("search:%d", size))
		for it := 0; it < *iters; it++ {
			repo.RankEntries(target, entries, 5, *workers)
		}
		sp.SetInt("catalog_size", int64(size))
		sp.SetInt("iterations", int64(*iters))
		sp.End()
		fmt.Fprintf(os.Stderr, "repo bench: searched catalog of %d, %d iterations\n", size, *iters)
	}

	// Phase 3: ensemble vs single-model serving overhead. Two models
	// trained on the bibliographic pair in both directions share one
	// feature space, so the two-member ensemble is well-formed.
	if err := benchEnsemble(tr, *scale, *workers); err != nil {
		return err
	}

	if *metricsOut != "" {
		report := obs.BuildReport("repo", args, tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "repo bench: wrote %s\n", *metricsOut)
	}
	return nil
}

// benchEnsemble trains the bibliographic task in both directions,
// catalogues the two artifacts in a temp directory, and scores the
// target compare matrix with the single best model and the two-member
// ensemble, spanning each.
func benchEnsemble(tr *obs.Tracer, scale float64, workers int) error {
	acm := datagen.DBLPACM(scale)
	scholar := datagen.DBLPScholar(scale)

	train := func(src, tgt datagen.DomainPair) (*model.Artifact, *transer.Domain, error) {
		source, err := transer.NewDomain(src.A, src.B, transer.WithName(src.Name), transer.WithBlocking(src.Blocking))
		if err != nil {
			return nil, nil, err
		}
		target, err := transer.NewDomain(tgt.A, tgt.B, transer.WithName(tgt.Name), transer.WithBlocking(tgt.Blocking), transer.WithoutLabels())
		if err != nil {
			return nil, nil, err
		}
		res, err := transer.Transfer(source, target)
		if err != nil {
			return nil, nil, err
		}
		pc, ok := res.Classifier.(ml.ParamClassifier)
		if !ok {
			return nil, nil, fmt.Errorf("classifier %T does not support parameter export", res.Classifier)
		}
		art, err := model.New(src.Name+"→"+tgt.Name, pc, target.A.Schema, target.Scheme)
		if err != nil {
			return nil, nil, err
		}
		art.Provenance.Signature = repo.BuildSignature(target.A, target.B, target.X)
		return art, target, nil
	}

	sp := tr.Root().Child("train:pair")
	artFwd, target, err := train(acm, scholar)
	if err != nil {
		sp.End()
		return err
	}
	artRev, _, err := train(scholar, acm)
	if err != nil {
		sp.End()
		return err
	}
	sp.End()

	dir, err := os.MkdirTemp("", "repo-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := repo.Open(dir)
	if err != nil {
		return err
	}
	eFwd, err := c.Add(artFwd)
	if err != nil {
		return err
	}
	eRev, err := c.Add(artRev)
	if err != nil {
		return err
	}

	single, err := c.EnsembleFor(eFwd.Fingerprint)
	if err != nil {
		return err
	}
	pairSel := fmt.Sprintf("%s@0.6,%s@0.4", eFwd.Fingerprint, eRev.Fingerprint)
	both, err := c.EnsembleFor(pairSel)
	if err != nil {
		return err
	}

	for _, run := range []struct {
		name string
		e    *repo.Ensemble
	}{{"score:single", single}, {"score:ensemble", both}} {
		sp := tr.Root().Child(run.name)
		p := run.e.Score(target.X, workers)
		sp.SetInt("rows", int64(len(p)))
		sp.SetInt("members", int64(len(run.e.Members())))
		sp.End()
		fmt.Fprintf(os.Stderr, "repo bench: %s scored %d pairs\n", run.name, len(p))
	}
	return nil
}
