// Command stream is the batch-replay mode of the live entity store
// (internal/stream): it reads a record set, ingests every record
// through the same incremental ingest path cmd/serve -stream uses, and
// writes a JSON replay summary (entities, merges, throughput, store
// fingerprint).
//
// Usage:
//
//	stream -dataset DBLP-ACM -scale 0.3                     # builtin pair, dedup universe
//	stream -a a.csv -b b.csv -model model.json              # model-scored replay
//	stream -a a.csv -selfcheck 5                            # + differential check vs batch
//	stream -a a.csv -wal store.wal -snapshot store.snap     # durable replay
//
// Inputs mirror cmd/query: a built-in generated dataset pair
// (-dataset; both sides are concatenated into one dedup universe,
// blocked with the pair's recommended LSH configuration) or CSV files
// in the cmd/datagen format. With -model records are scored by a
// transer.model/v1 artifact exactly as cmd/serve scores them and the
// threshold defaults to the model's; without it, scores are mean
// feature similarity at -threshold (default 0.85).
//
// -selfcheck N runs the differential harness
// (internal/testkit/streamdiff) after the replay: the final streaming
// partition must equal the batch query-engine partition for the
// natural order plus N shuffled orders. A divergence exits non-zero
// and prints the offending order.
//
// -wal appends every admitted record to a write-ahead log and replays
// an existing log on start (records already stored are skipped, so a
// resumed replay is idempotent); -snapshot loads a snapshot on start
// and writes one after the replay. -resolve N re-probes the first N
// ingested records read-only, exercising the resolve path for
// benchmarks. -metrics-out writes a transer.obs.report/v1 run report
// whose ingest/resolve spans cmd/benchreport aggregates into
// BENCH_stream.json.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/stream"
	"transer/internal/testkit/streamdiff"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

// SummarySchemaVersion identifies the replay summary format.
const SummarySchemaVersion = "transer.stream.replay/v1"

// Document is the JSON replay summary.
type Document struct {
	Schema      string      `json:"schema"`
	Dataset     string      `json:"dataset"`
	Scorer      string      `json:"scorer"`
	Threshold   float64     `json:"threshold"`
	Replayed    int         `json:"replayed"`
	Skipped     int         `json:"skipped,omitempty"`
	Records     int         `json:"records"`
	Entities    int         `json:"entities"`
	Merges      int         `json:"merges"`
	IngestMS    float64     `json:"ingest_ms"`
	IngestPerS  float64     `json:"ingest_per_s"`
	Resolved    int         `json:"resolved,omitempty"`
	Matched     int         `json:"matched,omitempty"`
	ResolveMS   float64     `json:"resolve_ms,omitempty"`
	EntitySizes map[int]int `json:"entity_sizes"`
	Fingerprint string      `json:"fingerprint"`
	SelfCheck   *SelfCheck  `json:"self_check,omitempty"`
}

// SelfCheck reports the differential harness verdict.
type SelfCheck struct {
	Orders int  `json:"orders"`
	OK     bool `json:"ok"`
}

func run() error {
	var (
		datasetKey = flag.String("dataset", "", "built-in dataset pair key (as cmd/datagen); both sides replay into one dedup universe")
		scale      = flag.Float64("scale", 0.3, "size scale factor for -dataset")
		aPath      = flag.String("a", "", "A-side CSV file (cmd/datagen format)")
		bPath      = flag.String("b", "", "B-side CSV file, concatenated after A")
		modelPath  = flag.String("model", "", "score with a transer.model/v1 artifact instead of mean feature similarity")
		threshold  = flag.Float64("threshold", -1, "match threshold (default: the model's decision threshold, or 0.85 without -model)")
		workers    = flag.Int("workers", 0, "scoring worker pool (0 = one per CPU; the final partition is identical for any value)")
		walPath    = flag.String("wal", "", "write-ahead log `file`: replayed on start, appended during the replay")
		snapPath   = flag.String("snapshot", "", "snapshot `file`: loaded on start if present, written after the replay")
		resolveN   = flag.Int("resolve", 0, "after the replay, re-probe the first `n` ingested records read-only")
		selfcheck  = flag.Int("selfcheck", -1, "run the differential harness over the natural order plus `n` shuffled orders (-1 = off)")
		seed       = flag.Int64("seed", 1, "rng seed for -selfcheck shuffles")
		outPath    = flag.String("out", "", "write the JSON summary to `file` (default stdout)")
		metricsOut = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
		logOut     = flag.String("log-out", "", "write structured JSONL event logs to `file` (\"-\" or \"stderr\" for stderr; empty = logging disabled)")
		logLevel   = flag.String("log-level", "info", "minimum structured log level: debug, info, warn, error")
	)
	flag.Parse()

	var (
		db   *dataset.Database
		name string
		cfg  stream.Config
	)
	switch {
	case *datasetKey != "" && *aPath != "":
		return errors.New("-dataset and -a are mutually exclusive")
	case *datasetKey != "":
		builtin, ok := datagen.BuiltinByKey(*datasetKey)
		if !ok {
			return fmt.Errorf("unknown dataset %q (see cmd/datagen for the keys)", *datasetKey)
		}
		pair := builtin.Make(*scale)
		db = streamdiff.Universe(pair.A, pair.B)
		cfg.LSH = pair.Blocking
		name = pair.Name
	case *aPath != "":
		a, err := dataset.ReadCSVFile(*aPath, baseName(*aPath))
		if err != nil {
			return err
		}
		if *bPath != "" {
			b, err := dataset.ReadCSVFile(*bPath, baseName(*bPath))
			if err != nil {
				return err
			}
			db = streamdiff.Universe(a, b)
		} else {
			db = a
		}
		name = db.Name
	default:
		return errors.New("need an input: -dataset KEY or -a file.csv")
	}

	scorer := "mean"
	if *modelPath != "" {
		m, err := model.LoadMatcher(*modelPath)
		if err != nil {
			return err
		}
		if !m.Schema.Equal(db.Schema) {
			return fmt.Errorf("model %q expects attributes %v, dataset has %v",
				m.Artifact.Name, m.AttributeNames(), db.Schema.Names())
		}
		lsh := cfg.LSH
		cfg = stream.FromMatcher(m)
		cfg.LSH = lsh
		scorer = "model:" + m.Artifact.Name
	} else {
		cfg.Schema = db.Schema
		cfg.Threshold = 0.85
	}
	if *threshold >= 0 {
		cfg.Threshold = *threshold
	}
	cfg.Workers = *workers

	tr := obs.New("stream")
	cfg.Metrics = tr.Metrics()
	lw, err := obs.OpenLogOutput(*logOut)
	if err != nil {
		return err
	}
	if lw != nil {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		cfg.Logger = obs.NewLogger(lw, lv)
		cfg.Logger.Instrument(tr.Metrics())
	}

	st, err := stream.Recover(cfg, *snapPath, *walPath)
	if err != nil {
		return err
	}
	if n := st.Len(); n > 0 {
		fmt.Fprintf(os.Stderr, "stream: recovered %d records from %s\n", n, recoveredFrom(*snapPath, *walPath))
	}

	ctx := context.Background()
	doc := Document{
		Schema:    SummarySchemaVersion,
		Dataset:   name,
		Scorer:    scorer,
		Threshold: cfg.Threshold,
	}

	// Replay. Records already in the store (a resumed -wal replay)
	// are skipped so re-running the same command is idempotent.
	ingestStart := time.Now()
	probes := make([]dataset.Record, 0, *resolveN)
	for i, rec := range db.Records {
		id := replayID(db, i)
		if _, ok := st.EntityOf(id); ok {
			doc.Skipped++
			continue
		}
		rec.ID = id
		span := tr.Root().Child("ingest")
		_, err := st.Ingest(ctx, rec)
		span.End()
		if err != nil {
			return fmt.Errorf("record %d (%s): %w", i, id, err)
		}
		doc.Replayed++
		if len(probes) < *resolveN {
			probes = append(probes, rec)
		}
	}
	doc.IngestMS = float64(time.Since(ingestStart)) / float64(time.Millisecond)
	if doc.Replayed > 0 && doc.IngestMS > 0 {
		doc.IngestPerS = float64(doc.Replayed) / (doc.IngestMS / 1000)
	}

	// Read-only probes over the first -resolve ingested records.
	resolveStart := time.Now()
	for _, rec := range probes {
		span := tr.Root().Child("resolve")
		res, err := st.Resolve(ctx, dataset.Record{Values: rec.Values})
		span.End()
		if err != nil {
			return err
		}
		doc.Resolved++
		if res.Matched {
			doc.Matched++
		}
	}
	if doc.Resolved > 0 {
		doc.ResolveMS = float64(time.Since(resolveStart)) / float64(time.Millisecond)
	}

	stats := st.Stats()
	doc.Records, doc.Entities, doc.Merges = stats.Records, stats.Entities, stats.Merges
	doc.EntitySizes = map[int]int{}
	for _, members := range st.Partition() {
		doc.EntitySizes[len(members)]++
	}
	if doc.Fingerprint, err = st.Fingerprint(); err != nil {
		return err
	}

	if *snapPath != "" {
		if err := st.SnapshotFile(*snapPath); err != nil {
			return err
		}
	}
	if err := st.CloseWAL(); err != nil {
		return err
	}

	if *selfcheck >= 0 {
		rng := rand.New(rand.NewSource(*seed))
		tb := &cliTB{}
		ok := streamdiff.Check(tb, ctx, db, cfg, rng, *selfcheck)
		doc.SelfCheck = &SelfCheck{Orders: *selfcheck + 1, OK: ok}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stream: %d records -> %d entities (%d merges) at threshold %v\n",
		doc.Records, doc.Entities, doc.Merges, doc.Threshold)

	if lw != nil {
		lsp := tr.Root().Child("log:flush")
		err := lw.Close()
		lsp.End()
		if err != nil {
			return fmt.Errorf("log close: %w", err)
		}
	}
	if *metricsOut != "" {
		report := obs.BuildReport("stream", os.Args[1:], tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
	}
	if doc.SelfCheck != nil && !doc.SelfCheck.OK {
		return fmt.Errorf("self-check FAILED: streaming partition diverged from batch (see diagnostics above)")
	}
	return nil
}

// replayID assigns each replayed record a stable unique id: the source
// id when the input guarantees uniqueness would be ideal, but linkage
// pairs routinely reuse ids across sides, so ids are keyed by position
// in the concatenated universe.
func replayID(db *dataset.Database, i int) string {
	id := db.Records[i].ID
	if id == "" {
		return fmt.Sprintf("u%d", i)
	}
	return fmt.Sprintf("u%d:%s", i, id)
}

func recoveredFrom(snap, wal string) string {
	var parts []string
	if snap != "" {
		parts = append(parts, "snapshot "+snap)
	}
	if wal != "" {
		parts = append(parts, "wal "+wal)
	}
	return strings.Join(parts, " + ")
}

func baseName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// cliTB adapts the streamdiff.TB reporting surface to stderr.
type cliTB struct{ failed bool }

func (t *cliTB) Errorf(format string, args ...interface{}) {
	t.failed = true
	fmt.Fprintf(os.Stderr, "stream: selfcheck: "+format+"\n", args...)
}

func (t *cliTB) Logf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "stream: selfcheck: "+format+"\n", args...)
}
