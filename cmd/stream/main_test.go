package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/testkit"
)

func TestStreamMissingInput(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/stream")
	out := testkit.RunBinaryErr(t, bin)
	if !strings.Contains(out, "need an input") {
		t.Fatalf("want a missing-input diagnostic, got:\n%s", out)
	}
}

func readSummary(t *testing.T, path string) Document {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, data)
	}
	if doc.Schema != SummarySchemaVersion {
		t.Fatalf("summary schema %q, want %q", doc.Schema, SummarySchemaVersion)
	}
	return doc
}

// TestStreamReplaySelfcheck replays a builtin pair with the
// differential self-check on: the binary must exit cleanly with a
// summary whose self_check verdict is ok, proving streaming == batch
// end to end through the CLI.
func TestStreamReplaySelfcheck(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/stream")
	out := filepath.Join(t.TempDir(), "summary.json")
	log := testkit.RunBinary(t, bin,
		"-dataset", "DBLP-ACM", "-scale", "0.06",
		"-threshold", "0.6", "-selfcheck", "2", "-resolve", "10",
		"-out", out)
	doc := readSummary(t, out)
	if doc.Records == 0 || doc.Replayed != doc.Records {
		t.Fatalf("replayed %d of %d records:\n%s", doc.Replayed, doc.Records, log)
	}
	if doc.Entities == 0 || doc.Entities > doc.Records {
		t.Fatalf("implausible entity count %d for %d records", doc.Entities, doc.Records)
	}
	// Every journaled merge collapses two entities into one, and only
	// records can open entities, so merges never exceed the surplus of
	// records over surviving entities.
	if doc.Merges > doc.Records-doc.Entities {
		t.Fatalf("records=%d entities=%d merges=%d violate the merge bound",
			doc.Records, doc.Entities, doc.Merges)
	}
	if doc.Fingerprint == "" {
		t.Fatal("summary lacks a store fingerprint")
	}
	if doc.Resolved != 10 {
		t.Fatalf("resolved %d probes, want 10", doc.Resolved)
	}
	if doc.SelfCheck == nil || !doc.SelfCheck.OK || doc.SelfCheck.Orders != 3 {
		t.Fatalf("self-check verdict: %+v\n%s", doc.SelfCheck, log)
	}
	var sum int
	for size, count := range doc.EntitySizes {
		sum += size * count
	}
	if sum != doc.Records {
		t.Fatalf("entity size histogram covers %d records, store has %d", sum, doc.Records)
	}
}

// TestStreamReplayDeterministicAcrossWorkers: the store fingerprint —
// records, entity assignments, journal and index state — is identical
// for every worker count.
func TestStreamReplayDeterministicAcrossWorkers(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/stream")
	fp := map[string]bool{}
	for _, workers := range []string{"1", "4"} {
		out := filepath.Join(t.TempDir(), "summary-"+workers+".json")
		testkit.RunBinary(t, bin,
			"-dataset", "DBLP-Scholar", "-scale", "0.06",
			"-threshold", "0.6", "-workers", workers, "-out", out)
		fp[readSummary(t, out).Fingerprint] = true
	}
	if len(fp) != 1 {
		t.Fatalf("fingerprints diverge across worker counts: %v", fp)
	}
}

// TestStreamReplayResume: a second replay over the same WAL skips
// every record (idempotent resume) and lands on the same fingerprint;
// a fresh process recovering from the snapshot alone agrees too.
func TestStreamReplayResume(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/stream")
	dir := t.TempDir()
	wal := filepath.Join(dir, "store.wal")
	snap := filepath.Join(dir, "store.snap")
	args := []string{
		"-dataset", "DBLP-ACM", "-scale", "0.06", "-threshold", "0.6",
		"-wal", wal, "-snapshot", snap, "-out", "",
	}

	first := filepath.Join(dir, "first.json")
	args[len(args)-1] = first
	testkit.RunBinary(t, bin, args...)
	doc1 := readSummary(t, first)
	if doc1.Skipped != 0 || doc1.Replayed == 0 {
		t.Fatalf("first replay: %+v", doc1)
	}

	second := filepath.Join(dir, "second.json")
	args[len(args)-1] = second
	log := testkit.RunBinary(t, bin, args...)
	doc2 := readSummary(t, second)
	if doc2.Replayed != 0 || doc2.Skipped != doc1.Records {
		t.Fatalf("resumed replay admitted records: %+v\n%s", doc2, log)
	}
	if !strings.Contains(log, "recovered") {
		t.Fatalf("resumed replay did not report recovery:\n%s", log)
	}
	if doc1.Fingerprint != doc2.Fingerprint {
		t.Fatalf("fingerprint changed across an idempotent resume:\n%s\n%s",
			doc1.Fingerprint, doc2.Fingerprint)
	}

	// Snapshot-only recovery (no WAL) reaches the same state.
	third := filepath.Join(dir, "third.json")
	testkit.RunBinary(t, bin,
		"-dataset", "DBLP-ACM", "-scale", "0.06", "-threshold", "0.6",
		"-snapshot", snap, "-out", third)
	if doc3 := readSummary(t, third); doc3.Fingerprint != doc1.Fingerprint {
		t.Fatalf("snapshot-only recovery fingerprint diverged:\n%s\n%s",
			doc1.Fingerprint, doc3.Fingerprint)
	}
}
