package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/obs"
	"transer/internal/testkit"
)

func TestTranserMissingRequiredFlag(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	out := testkit.RunBinaryErr(t, bin)
	if !strings.Contains(out, "missing required flag -source-a") {
		t.Fatalf("want a missing-flag diagnostic, got:\n%s", out)
	}
}

func TestTranserUsageListsFlags(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-source-a", "-target-b", "-tc", "-tl", "-tp", "-k", "-b", "-out"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("usage output lacks %s:\n%s", flag, out)
		}
	}
}

// End to end on a miniature task: datagen emits the CSVs, transer
// blocks, compares, transfers and writes predicted matches.
func TestTranserEndToEnd(t *testing.T) {
	datagen := testkit.BuildBinary(t, "transer/cmd/datagen")
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	dir := t.TempDir()
	testkit.RunBinary(t, datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir)
	testkit.RunBinary(t, datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir)

	outCSV := filepath.Join(dir, "matches.csv")
	out := testkit.RunBinary(t, bin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", filepath.Join(dir, "dblp-scholar-a.csv"),
		"-target-b", filepath.Join(dir, "dblp-scholar-b.csv"),
		"-out", outCSV)
	// The generated target carries entity ids, so the run must report
	// phase statistics and an evaluation block on stderr.
	for _, want := range []string{"SEL kept", "evaluation:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output lacks %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatalf("reading matches: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "a_id,b_id,probability" {
		t.Fatalf("unexpected matches header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("no predicted matches on an overlapping bibliographic task:\n%s", data)
	}
	for _, line := range lines[1:] {
		if fields := strings.Split(line, ","); len(fields) != 3 {
			t.Fatalf("malformed match row %q", line)
		}
	}
}

// TestTranserMetricsReport runs the same miniature task with
// -metrics-out and validates the emitted report: the transfer span
// must carry the TransER phases with their fit/predict children.
func TestTranserMetricsReport(t *testing.T) {
	datagen := testkit.BuildBinary(t, "transer/cmd/datagen")
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	dir := t.TempDir()
	testkit.RunBinary(t, datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir)
	testkit.RunBinary(t, datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir)

	report := filepath.Join(dir, "report.json")
	testkit.RunBinary(t, bin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", filepath.Join(dir, "dblp-scholar-a.csv"),
		"-target-b", filepath.Join(dir, "dblp-scholar-b.csv"),
		"-out", filepath.Join(dir, "matches.csv"),
		"-metrics-out", report)

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	transfer := r.Span.Find("transfer")
	if transfer == nil {
		t.Fatalf("report lacks the transfer span")
	}
	for _, phase := range []string{"sel", "gen", "tcl"} {
		if transfer.Find(phase) == nil {
			t.Errorf("report lacks the %s phase span", phase)
		}
	}
	if r.Span.Find("build:source") == nil || r.Span.Find("build:target") == nil {
		t.Errorf("report lacks the domain build spans")
	}
}
