package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	transer "transer"
	"transer/internal/dataset"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/testkit"
)

func TestTranserMissingRequiredFlag(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	out := testkit.RunBinaryErr(t, bin)
	if !strings.Contains(out, "missing required flag -source-a") {
		t.Fatalf("want a missing-flag diagnostic, got:\n%s", out)
	}
}

func TestTranserUsageListsFlags(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-source-a", "-target-b", "-tc", "-tl", "-tp", "-k", "-b", "-out",
		"-seed", "-workers", "-model-out", "-metrics-out"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("usage output lacks %s:\n%s", flag, out)
		}
	}
}

// End to end on a miniature task: datagen emits the CSVs, transer
// blocks, compares, transfers and writes predicted matches.
func TestTranserEndToEnd(t *testing.T) {
	datagen := testkit.BuildBinary(t, "transer/cmd/datagen")
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	dir := t.TempDir()
	testkit.RunBinary(t, datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir)
	testkit.RunBinary(t, datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir)

	outCSV := filepath.Join(dir, "matches.csv")
	out := testkit.RunBinary(t, bin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", filepath.Join(dir, "dblp-scholar-a.csv"),
		"-target-b", filepath.Join(dir, "dblp-scholar-b.csv"),
		"-out", outCSV)
	// The generated target carries entity ids, so the run must report
	// phase statistics and an evaluation block on stderr.
	for _, want := range []string{"SEL kept", "evaluation:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output lacks %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatalf("reading matches: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "a_id,b_id,probability" {
		t.Fatalf("unexpected matches header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatalf("no predicted matches on an overlapping bibliographic task:\n%s", data)
	}
	for _, line := range lines[1:] {
		if fields := strings.Split(line, ","); len(fields) != 3 {
			t.Fatalf("malformed match row %q", line)
		}
	}
}

// TestTranserMetricsReport runs the same miniature task with
// -metrics-out and validates the emitted report: the transfer span
// must carry the TransER phases with their fit/predict children.
func TestTranserMetricsReport(t *testing.T) {
	datagen := testkit.BuildBinary(t, "transer/cmd/datagen")
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	dir := t.TempDir()
	testkit.RunBinary(t, datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir)
	testkit.RunBinary(t, datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir)

	report := filepath.Join(dir, "report.json")
	testkit.RunBinary(t, bin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", filepath.Join(dir, "dblp-scholar-a.csv"),
		"-target-b", filepath.Join(dir, "dblp-scholar-b.csv"),
		"-out", filepath.Join(dir, "matches.csv"),
		"-metrics-out", report)

	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	transfer := r.Span.Find("transfer")
	if transfer == nil {
		t.Fatalf("report lacks the transfer span")
	}
	for _, phase := range []string{"sel", "gen", "tcl"} {
		if transfer.Find(phase) == nil {
			t.Errorf("report lacks the %s phase span", phase)
		}
	}
	if r.Span.Find("build:source") == nil || r.Span.Find("build:target") == nil {
		t.Errorf("report lacks the domain build spans")
	}
}

// TestTranserModelExport runs the miniature task with -model-out and
// verifies the exported artifact reproduces the run's own decisions:
// re-scoring the target CSVs through the loaded model must yield
// exactly the match set the run wrote to -out.
func TestTranserModelExport(t *testing.T) {
	datagen := testkit.BuildBinary(t, "transer/cmd/datagen")
	bin := testkit.BuildBinary(t, "transer/cmd/transer")
	dir := t.TempDir()
	testkit.RunBinary(t, datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir)
	testkit.RunBinary(t, datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir)

	outCSV := filepath.Join(dir, "matches.csv")
	modelPath := filepath.Join(dir, "model.json")
	tgtA, tgtB := filepath.Join(dir, "dblp-scholar-a.csv"), filepath.Join(dir, "dblp-scholar-b.csv")
	testkit.RunBinary(t, bin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", tgtA,
		"-target-b", tgtB,
		"-out", outCSV,
		"-model-out", modelPath)

	m, err := model.LoadMatcher(modelPath)
	if err != nil {
		t.Fatalf("LoadMatcher: %v", err)
	}
	if m.Artifact.Classifier.Type != "rf" {
		t.Errorf("default classifier exported as %q, want rf", m.Artifact.Classifier.Type)
	}
	if m.Artifact.Provenance.TargetA == "" || len(m.Artifact.Provenance.TargetA) != 64 {
		t.Errorf("provenance lacks target fingerprints: %+v", m.Artifact.Provenance)
	}

	// Rebuild the target domain as the run did and re-score through the
	// loaded model.
	dbA, err := dataset.ReadCSVFile(tgtA, "target-a")
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := dataset.ReadCSVFile(tgtB, "target-b")
	if err != nil {
		t.Fatal(err)
	}
	target, err := transer.NewDomain(dbA, dbB, transer.WithName("target"))
	if err != nil {
		t.Fatal(err)
	}
	proba := m.Score(target.X, 0)
	want := map[string]string{}
	for i, p := range target.Pairs {
		if m.Decide(proba[i]) {
			key := target.A.Records[p.A].ID + "," + target.B.Records[p.B].ID
			want[key] = fmt.Sprintf("%.4f", proba[i])
		}
	}

	data, err := os.ReadFile(outCSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	got := map[string]string{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		got[f[0]+","+f[1]] = f[2]
	}
	if len(got) != len(want) {
		t.Fatalf("run wrote %d matches, loaded model decides %d", len(got), len(want))
	}
	for k, p := range want {
		if got[k] != p {
			t.Errorf("pair %s: run wrote probability %s, model scores %s", k, got[k], p)
		}
	}
}
