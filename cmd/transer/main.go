// Command transer runs the full TransER pipeline on CSV databases:
// block, compare, transfer labels from a labelled source domain to an
// unlabelled target domain, and write the predicted matches.
//
// Usage:
//
//	transer -source-a s1.csv -source-b s2.csv \
//	        -target-a t1.csv -target-b t2.csv \
//	        -out matches.csv [-tc 0.9] [-tl 0.9] [-tp 0.9] [-k 7] [-b 3]
//
// The CSVs use the format produced by cmd/datagen (header
// "id,entity_id,<attr:type>,..."). The source databases must carry
// entity ids (they provide the training labels); target entity ids,
// when present, are used only to print evaluation measures.
package main

import (
	"flag"
	"fmt"
	"os"

	transer "transer"
	"transer/internal/dataset"
)

func main() {
	var (
		srcA = flag.String("source-a", "", "source domain database A (CSV)")
		srcB = flag.String("source-b", "", "source domain database B (CSV)")
		tgtA = flag.String("target-a", "", "target domain database A (CSV)")
		tgtB = flag.String("target-b", "", "target domain database B (CSV)")
		out  = flag.String("out", "", "output CSV of predicted matches (default stdout)")
		tc   = flag.Float64("tc", 0.9, "instance confidence threshold t_c")
		tl   = flag.Float64("tl", 0.9, "structural similarity threshold t_l")
		tp   = flag.Float64("tp", 0.9, "pseudo label confidence threshold t_p")
		k    = flag.Int("k", 7, "neighbourhood size")
		b    = flag.Float64("b", 3, "non-match : match balance ratio")
	)
	flag.Parse()
	for _, req := range []struct{ name, v string }{
		{"-source-a", *srcA}, {"-source-b", *srcB}, {"-target-a", *tgtA}, {"-target-b", *tgtB},
	} {
		if req.v == "" {
			fatal(fmt.Errorf("missing required flag %s", req.name))
		}
	}

	load := func(path, name string) *transer.Database {
		db, err := dataset.ReadCSVFile(path, name)
		if err != nil {
			fatal(err)
		}
		return db
	}
	source, err := transer.NewDomain(load(*srcA, "source-a"), load(*srcB, "source-b"),
		transer.WithName("source"))
	if err != nil {
		fatal(err)
	}
	target, err := transer.NewDomain(load(*tgtA, "target-a"), load(*tgtB, "target-b"),
		transer.WithName("target"))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "source: %d candidate pairs (%.1f%% labelled matches)\n",
		source.NumPairs(), 100*source.MatchFraction())
	fmt.Fprintf(os.Stderr, "target: %d candidate pairs\n", target.NumPairs())

	cfg := transer.DefaultConfig()
	cfg.TC, cfg.TL, cfg.TP, cfg.K, cfg.B = *tc, *tl, *tp, *k, *b
	res, err := transer.Transfer(source, target, transer.WithConfig(cfg))
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "SEL kept %d/%d, GEN confident %d, TCL trained %d\n",
		st.Selected, st.SourceInstances, st.HighConfidence, st.BalancedTrain)
	if target.Labelled() {
		m := res.Evaluate(target)
		fmt.Fprintf(os.Stderr, "evaluation: P=%.2f R=%.2f F*=%.2f F1=%.2f\n",
			m.Precision, m.Recall, m.FStar, m.F1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintln(w, "a_id,b_id,probability")
	for i, p := range target.Pairs {
		if res.Labels[i] == 1 {
			fmt.Fprintf(w, "%s,%s,%.4f\n",
				target.A.Records[p.A].ID, target.B.Records[p.B].ID, res.Proba[i])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "transer:", err)
	os.Exit(1)
}
