// Command transer runs the full TransER pipeline on CSV databases:
// block, compare, transfer labels from a labelled source domain to an
// unlabelled target domain, and write the predicted matches.
//
// Usage:
//
//	transer -source-a s1.csv -source-b s2.csv \
//	        -target-a t1.csv -target-b t2.csv \
//	        [-out matches.csv] [-tc 0.9] [-tl 0.9] [-tp 0.9] [-k 7] [-b 3] \
//	        [-seed 0] [-workers 0] \
//	        [-model-out model.json] [-metrics-out report.json] \
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	        [-exectrace trace.out]
//
// The CSVs use the format produced by cmd/datagen (header
// "id,entity_id,<attr:type>,..."). The source databases must carry
// entity ids (they provide the training labels); target entity ids,
// when present, are used only to print evaluation measures. Predicted
// matches go to -out (default stdout).
//
// -model-out exports the trained target classifier as a
// transer.model/v1 JSON artifact that cmd/serve can load; the served
// model scores pairs byte-identically to this run.
//
// -metrics-out writes a transer.obs.report/v1 JSON run report with
// spans for the source/target domain builds and the TransER run
// (SEL/GEN/TCL phases with classifier fit/predict children).
//
// -workers bounds the worker pool (0 = one per CPU); output is
// byte-identical for every worker count. -seed drives the TCL
// under-sampling and any stochastic classifier.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	transer "transer"
	"transer/internal/dataset"
	"transer/internal/ml"
	"transer/internal/model"
	"transer/internal/obs"
	"transer/internal/parallel"
	"transer/internal/pipeline"
	"transer/internal/repo"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "transer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		srcA       = flag.String("source-a", "", "source domain database A (CSV)")
		srcB       = flag.String("source-b", "", "source domain database B (CSV)")
		tgtA       = flag.String("target-a", "", "target domain database A (CSV)")
		tgtB       = flag.String("target-b", "", "target domain database B (CSV)")
		out        = flag.String("out", "", "output CSV of predicted matches (default stdout)")
		tc         = flag.Float64("tc", 0.9, "instance confidence threshold t_c")
		tl         = flag.Float64("tl", 0.9, "structural similarity threshold t_l")
		tp         = flag.Float64("tp", 0.9, "pseudo label confidence threshold t_p")
		k          = flag.Int("k", 7, "neighbourhood size")
		b          = flag.Float64("b", 3, "non-match : match balance ratio")
		seed       = flag.Int64("seed", 0, "seed for under-sampling and stochastic classifiers")
		workers    = flag.Int("workers", 0, "worker pool size (0 = one per CPU; results identical for any value)")
		selMode    = flag.String("sel-mode", "", "SEL engine: exact|dedup|reference|approx (default exact; all but approx select identically)")
		modelOut   = flag.String("model-out", "", "export the trained classifier as a transer.model/v1 artifact to `file`")
		metricsOut = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
		logOut     = flag.String("log-out", "", "write structured JSONL event logs to `file` (\"-\" or \"stderr\" for stderr; empty = logging disabled)")
		logLevel   = flag.String("log-level", "info", "minimum structured log level: debug, info, warn, error")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace to `file`")
	)
	flag.Parse()
	for _, req := range []struct{ name, v string }{
		{"-source-a", *srcA}, {"-source-b", *srcB}, {"-target-a", *tgtA}, {"-target-b", *tgtB},
	} {
		if req.v == "" {
			return fmt.Errorf("missing required flag %s", req.name)
		}
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "transer:", err)
		}
	}()
	tr := obs.New("transer")
	parallel.RegisterMetrics(tr.Metrics())
	defer parallel.RegisterMetrics(nil)
	lw, err := obs.OpenLogOutput(*logOut)
	if err != nil {
		return err
	}
	var logger *obs.Logger
	if lw != nil {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(lw, lv)
		logger.Instrument(tr.Metrics())
	}
	// One trace per training run, correlating its phase events.
	runCtx := obs.ContextWithTrace(context.Background(), obs.NewTraceContext())

	load := func(path, name string) (*transer.Database, error) {
		return dataset.ReadCSVFile(path, name)
	}
	buildDomain := func(role, pathA, pathB string) (*transer.Domain, error) {
		sp := tr.Root().Child("build:" + role)
		defer sp.End()
		a, err := load(pathA, role+"-a")
		if err != nil {
			return nil, err
		}
		b, err := load(pathB, role+"-b")
		if err != nil {
			return nil, err
		}
		d, err := transer.NewDomain(a, b, transer.WithName(role))
		if err != nil {
			return nil, err
		}
		sp.SetInt("candidate_pairs", int64(d.NumPairs()))
		return d, nil
	}
	source, err := buildDomain("source", *srcA, *srcB)
	if err != nil {
		return err
	}
	target, err := buildDomain("target", *tgtA, *tgtB)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "source: %d candidate pairs (%.1f%% labelled matches)\n",
		source.NumPairs(), 100*source.MatchFraction())
	fmt.Fprintf(os.Stderr, "target: %d candidate pairs\n", target.NumPairs())

	cfg := transer.DefaultConfig()
	cfg.TC, cfg.TL, cfg.TP, cfg.K, cfg.B = *tc, *tl, *tp, *k, *b
	cfg.Seed, cfg.Workers = *seed, *workers
	cfg.SELMode = *selMode
	runSpan := tr.Root().Child("transfer")
	cfg.Obs = runSpan
	res, err := transer.Transfer(source, target, transer.WithConfig(cfg))
	runSpan.End()
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "SEL kept %d/%d, GEN confident %d, TCL trained %d\n",
		st.Selected, st.SourceInstances, st.HighConfidence, st.BalancedTrain)
	logger.Info(runCtx, "transer.transfer",
		obs.FInt("sel_kept", int64(st.Selected)),
		obs.FInt("source_instances", int64(st.SourceInstances)),
		obs.FInt("gen_confident", int64(st.HighConfidence)),
		obs.FInt("tcl_trained", int64(st.BalancedTrain)))
	if target.Labelled() {
		m := res.Evaluate(target)
		fmt.Fprintf(os.Stderr, "evaluation: P=%.2f R=%.2f F*=%.2f F1=%.2f\n",
			m.Precision, m.Recall, m.FStar, m.F1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := writeMatches(f, target, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := writeMatches(os.Stdout, target, res); err != nil {
		return err
	}

	if *modelOut != "" {
		if err := exportModel(*modelOut, res, source, target, cfg); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "model: wrote %s\n", *modelOut)
	}

	if lw != nil {
		lsp := tr.Root().Child("log:flush")
		err := lw.Close()
		lsp.End()
		if err != nil {
			return fmt.Errorf("log close: %w", err)
		}
	}
	if *metricsOut != "" {
		parallel.PublishStats(tr.Metrics())
		report := obs.BuildReport("transer", os.Args[1:], tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
	}
	return nil
}

// writeMatches renders the predicted matches as CSV, surfacing write
// errors (a full disk must not silently truncate the match set).
func writeMatches(w io.Writer, target *transer.Domain, res *transer.Result) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "a_id,b_id,probability")
	for i, p := range target.Pairs {
		if res.Labels[i] == 1 {
			fmt.Fprintf(bw, "%s,%s,%.4f\n",
				target.A.Records[p.A].ID, target.B.Records[p.B].ID, res.Proba[i])
		}
	}
	return bw.Flush()
}

// exportModel persists the run's trained classifier as a
// transer.model/v1 artifact, stamped with the training configuration
// and content fingerprints of the four input databases.
func exportModel(path string, res *transer.Result, source, target *transer.Domain, cfg transer.Config) error {
	pc, ok := res.Classifier.(ml.ParamClassifier)
	if !ok {
		return fmt.Errorf("classifier %T does not support parameter export", res.Classifier)
	}
	art, err := model.New(source.Name+"→"+target.Name, pc, target.A.Schema, target.Scheme)
	if err != nil {
		return err
	}
	cfg.Obs = nil
	art.Training = model.TrainingFromConfig(cfg)
	st := res.Stats
	art.Provenance = model.Provenance{
		SourceName:     source.Name,
		TargetName:     target.Name,
		SourceA:        pipeline.DataFingerprint(source.A).Hex(),
		SourceB:        pipeline.DataFingerprint(source.B).Hex(),
		TargetA:        pipeline.DataFingerprint(target.A).Hex(),
		TargetB:        pipeline.DataFingerprint(target.B).Hex(),
		SourcePairs:    source.NumPairs(),
		TargetPairs:    target.NumPairs(),
		Selected:       st.Selected,
		HighConfidence: st.HighConfidence,
		BalancedTrain:  st.BalancedTrain,
		TCLFallback:    st.TCLFallback,
		// The target-domain signature makes the artifact searchable in a
		// model repository (cmd/repo, internal/repo) without revisiting
		// the training data.
		Signature: repo.BuildSignature(target.A, target.B, target.X),
	}
	return art.WriteFile(path)
}
