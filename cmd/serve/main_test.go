package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	transer "transer"
	"transer/internal/dataset"
	"transer/internal/obs"
	"transer/internal/serve"
	"transer/internal/testkit"
)

func TestServeMissingModelFlag(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	out := testkit.RunBinaryErr(t, bin)
	if !strings.Contains(out, "missing required flag -model") {
		t.Fatalf("want a missing-flag diagnostic, got:\n%s", out)
	}
}

func TestServeUsageListsFlags(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-model", "-addr", "-timeout", "-max-in-flight", "-max-queue",
		"-max-batch", "-workers", "-drain", "-metrics-out",
		"-stream", "-stream-wal", "-stream-snapshot"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("usage output lacks %s:\n%s", flag, out)
		}
	}
}

// trainModel runs datagen + cmd/transer -model-out once per test
// binary and caches the resulting directory.
var trainModel = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "serve-e2e")
	if err != nil {
		return "", err
	}
	build := func(pkg string) (string, error) {
		bin := filepath.Join(dir, filepath.Base(pkg))
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return "", fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
		return bin, nil
	}
	datagen, err := build("transer/cmd/datagen")
	if err != nil {
		return "", err
	}
	transerBin, err := build("transer/cmd/transer")
	if err != nil {
		return "", err
	}
	run := func(bin string, args ...string) error {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			return fmt.Errorf("%s %v: %v\n%s", bin, args, err, out)
		}
		return nil
	}
	if err := run(datagen, "-dataset", "dblp-acm", "-scale", "0.1", "-out", dir); err != nil {
		return "", err
	}
	if err := run(datagen, "-dataset", "dblp-scholar", "-scale", "0.1", "-out", dir); err != nil {
		return "", err
	}
	if err := run(transerBin,
		"-source-a", filepath.Join(dir, "dblp-acm-a.csv"),
		"-source-b", filepath.Join(dir, "dblp-acm-b.csv"),
		"-target-a", filepath.Join(dir, "dblp-scholar-a.csv"),
		"-target-b", filepath.Join(dir, "dblp-scholar-b.csv"),
		"-out", filepath.Join(dir, "matches.csv"),
		"-model-out", filepath.Join(dir, "model.json")); err != nil {
		return "", err
	}
	return dir, nil
})

func trainedDir(t *testing.T) string {
	t.Helper()
	dir, err := trainModel()
	if err != nil {
		t.Fatalf("training fixture: %v", err)
	}
	return dir
}

// serveProc is a running cmd/serve process bound to an ephemeral port.
type serveProc struct {
	cmd  *exec.Cmd
	base string
	done chan error

	mu     sync.Mutex
	stderr []string
}

// startServe launches the binary on 127.0.0.1:0 and waits until it
// reports its bound address.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	p := &serveProc{done: make(chan error, 1)}
	p.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.stderr = append(p.stderr, line)
			p.mu.Unlock()
			if i := strings.Index(line, "on http://"); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("on http://"):]):
				default:
				}
			}
		}
		p.done <- p.cmd.Wait()
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case err := <-p.done:
		t.Fatalf("serve exited before binding: %v\n%s", err, p.log())
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("serve did not report its address\n%s", p.log())
	}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

func (p *serveProc) log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.stderr, "\n")
}

// stop sends SIGTERM and waits for a clean exit.
func (p *serveProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal: %v", err)
	}
	select {
	case err := <-p.done:
		if err != nil {
			t.Fatalf("serve exited uncleanly: %v\n%s", err, p.log())
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("serve did not drain within 30s\n%s", p.log())
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(data, into); err != nil {
			t.Fatalf("GET %s: invalid JSON %q: %v", url, data, err)
		}
	}
	return resp
}

// targetBatch rebuilds the target domain the training run used and
// renders every candidate pair as a batch request payload.
func targetBatch(t *testing.T, dir string) (serve.BatchRequest, *transer.Domain) {
	t.Helper()
	dbA, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-scholar-a.csv"), "target-a")
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-scholar-b.csv"), "target-b")
	if err != nil {
		t.Fatal(err)
	}
	target, err := transer.NewDomain(dbA, dbB, transer.WithName("target"))
	if err != nil {
		t.Fatal(err)
	}
	attrs := make([]string, len(target.A.Schema.Attributes))
	for i, a := range target.A.Schema.Attributes {
		attrs[i] = a.Name
	}
	payload := func(r transer.Record) serve.RecordPayload {
		m := serve.RecordPayload{}
		for i, v := range r.Values {
			m[attrs[i]] = v
		}
		return m
	}
	var req serve.BatchRequest
	for _, pr := range target.Pairs {
		req.Pairs = append(req.Pairs, serve.MatchRequest{
			A: payload(target.A.Records[pr.A]),
			B: payload(target.B.Records[pr.B]),
		})
	}
	return req, target
}

// TestServeEndToEndParity is the headline acceptance check: a model
// trained by `cmd/transer -model-out` and served by `cmd/serve -model`
// returns exactly the decisions the training run wrote to its output
// CSV.
func TestServeEndToEndParity(t *testing.T) {
	dir := trainedDir(t)
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	p := startServe(t, bin, "-model", filepath.Join(dir, "model.json"))

	var health serve.HealthResponse
	if resp := getJSON(t, p.base+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if health.Status != "ok" {
		t.Fatalf("health %+v", health)
	}

	// The active model leads the listing; with -repo a catalog is
	// appended after it, so only the head is pinned here.
	var models serve.ModelsResponse
	getJSON(t, p.base+"/v1/models", &models)
	if len(models.Models) == 0 || models.Models[0].Classifier != "rf" || models.Models[0].Source != "active" {
		t.Fatalf("models %+v", models)
	}

	req, target := targetBatch(t, dir)
	resp, body := postJSON(t, p.base+"/v1/match/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d: %s", resp.StatusCode, body)
	}
	var batch serve.BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != len(req.Pairs) {
		t.Fatalf("batch scored %d of %d pairs", batch.Count, len(req.Pairs))
	}
	served := map[string]string{}
	for i, r := range batch.Results {
		if r.Match {
			pr := target.Pairs[i]
			key := target.A.Records[pr.A].ID + "," + target.B.Records[pr.B].ID
			served[key] = fmt.Sprintf("%.4f", r.Probability)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "matches.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	want := map[string]string{}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		want[f[0]+","+f[1]] = f[2]
	}
	if len(served) != len(want) {
		t.Fatalf("training run decided %d matches, served model %d", len(want), len(served))
	}
	for k, prob := range want {
		if served[k] != prob {
			t.Errorf("pair %s: training run %s, served %s", k, prob, served[k])
		}
	}

	// The single-pair endpoint agrees with the batch endpoint.
	var single serve.MatchResponse
	resp, body = postJSON(t, p.base+"/v1/match", req.Pairs[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match: %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.Probability != batch.Results[0].Probability {
		t.Errorf("single pair scores %v, batch %v", single.Probability, batch.Results[0].Probability)
	}

	// /metrics carries the versioned schema and counted this traffic.
	var metrics serve.MetricsResponse
	getJSON(t, p.base+"/metrics", &metrics)
	if metrics.Schema != serve.MetricsSchemaVersion {
		t.Errorf("metrics schema %q", metrics.Schema)
	}
	if metrics.Metrics.Counters["serve.requests_total"] < 2 {
		t.Errorf("requests_total %d after 2 scoring requests", metrics.Metrics.Counters["serve.requests_total"])
	}
	if metrics.Metrics.Histograms["serve.request_seconds"].Count < 2 {
		t.Errorf("latency histogram missing observations: %+v", metrics.Metrics.Histograms)
	}
	p.stop(t)
}

// TestServeBatchDeterminismAcrossWorkers runs two servers with
// different worker pools over the same batch and requires bitwise
// identical response bodies.
func TestServeBatchDeterminismAcrossWorkers(t *testing.T) {
	dir := trainedDir(t)
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	req, _ := targetBatch(t, dir)
	var want []byte
	for _, workers := range []string{"1", "3"} {
		p := startServe(t, bin, "-model", filepath.Join(dir, "model.json"), "-workers", workers)
		resp, body := postJSON(t, p.base+"/v1/match/batch", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%s: %d: %s", workers, resp.StatusCode, body)
		}
		if want == nil {
			want = body
		} else if !bytes.Equal(want, body) {
			t.Fatalf("batch response differs between -workers 1 and -workers %s", workers)
		}
		p.stop(t)
	}
}

// enlargeToBytes repeats base until the marshaled batch approaches
// (but stays under) targetBytes, keeping requests inside the server's
// body-size cap while occupying a scoring slot for an observable time.
func enlargeToBytes(t *testing.T, base []serve.MatchRequest, targetBytes int) []serve.MatchRequest {
	t.Helper()
	if len(base) == 0 {
		t.Fatal("empty base batch")
	}
	b, err := json.Marshal(serve.BatchRequest{Pairs: base})
	if err != nil {
		t.Fatal(err)
	}
	copies := targetBytes / len(b)
	if copies < 1 {
		copies = 1
	}
	pairs := make([]serve.MatchRequest, 0, copies*len(base))
	for i := 0; i < copies; i++ {
		pairs = append(pairs, base...)
	}
	return pairs
}

// TestServeShedsUnderSaturation saturates a 1-slot, 0-queue server
// with a slot-holding batch: the service must shed the next request
// with 429 + Retry-After rather than queue it, stay observable, and
// keep serving afterwards.
func TestServeShedsUnderSaturation(t *testing.T) {
	dir := trainedDir(t)
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	p := startServe(t, bin, "-model", filepath.Join(dir, "model.json"),
		"-max-in-flight", "1", "-max-queue", "0", "-workers", "1",
		"-max-batch", "1000000", "-timeout", "60s")

	req, _ := targetBatch(t, dir)
	// Enlarge the batch (up to the body-size cap) so it holds the single
	// scoring slot long enough to observe saturation deterministically.
	base := req.Pairs
	req.Pairs = enlargeToBytes(t, base, 6<<20)
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	holder := make(chan int, 1)
	go func() {
		resp, err := http.Post(p.base+"/v1/match/batch", "application/json", bytes.NewReader(b))
		if err != nil {
			holder <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		holder <- resp.StatusCode
	}()

	// Metadata endpoints stay outside the admission gate, so /metrics
	// tells us when the batch has taken the slot.
	saturated := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		var metrics serve.MetricsResponse
		getJSON(t, p.base+"/metrics", &metrics)
		if metrics.Metrics.Gauges["serve.in_flight"] >= 1 {
			saturated = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !saturated {
		t.Fatalf("giant batch never took the scoring slot\n%s", p.log())
	}

	// Slot taken, queue disabled: the next request must shed with 429.
	resp, body := postJSON(t, p.base+"/v1/match", base[0])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	// The server stays observable while saturated.
	var health serve.HealthResponse
	if hr := getJSON(t, p.base+"/healthz", &health); hr.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz unavailable under saturation: %d %+v", hr.StatusCode, health)
	}

	if code := <-holder; code != http.StatusOK {
		t.Fatalf("slot-holding batch answered %d\n%s", code, p.log())
	}
	// Saturation over: the server serves again.
	if resp, body := postJSON(t, p.base+"/v1/match", base[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("after saturation: %d: %s", resp.StatusCode, body)
	}
	var metrics serve.MetricsResponse
	getJSON(t, p.base+"/metrics", &metrics)
	if metrics.Metrics.Counters["serve.shed_total"] == 0 {
		t.Errorf("shed_total not incremented: %v", metrics.Metrics.Counters)
	}
	p.stop(t)
}

// TestServeGracefulShutdownMidBatch sends SIGTERM while a batch is in
// flight: the batch must complete with 200 and the process exit
// cleanly, writing a valid run report.
func TestServeGracefulShutdownMidBatch(t *testing.T) {
	dir := trainedDir(t)
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	report := filepath.Join(t.TempDir(), "serve-report.json")
	p := startServe(t, bin, "-model", filepath.Join(dir, "model.json"),
		"-workers", "1", "-metrics-out", report,
		"-max-batch", "1000000", "-timeout", "60s")

	req, _ := targetBatch(t, dir)
	// Enlarge the batch so it is still scoring when the signal lands.
	req.Pairs = enlargeToBytes(t, req.Pairs, 4<<20)
	type result struct {
		code int
		body []byte
		err  error
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(p.base+"/v1/match/batch", "application/json", bytes.NewReader(b))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			resCh <- result{err: err}
			return
		}
		resCh <- result{code: resp.StatusCode, body: body}
	}()
	// Signal only once the batch is observably in flight.
	inFlight := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		var m serve.MetricsResponse
		getJSON(t, p.base+"/metrics", &m)
		if m.Metrics.Gauges["serve.in_flight"] >= 1 {
			inFlight = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !inFlight {
		t.Fatalf("batch never became in-flight\n%s", p.log())
	}
	p.stop(t) // SIGTERM + wait for clean exit

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight batch failed during drain: %v\n%s", res.err, p.log())
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight batch answered %d during drain: %s", res.code, res.body)
	}
	var batch serve.BatchResponse
	if err := json.Unmarshal(res.body, &batch); err != nil {
		t.Fatalf("drained batch response invalid: %v", err)
	}
	if batch.Count != len(req.Pairs) {
		t.Fatalf("drained batch scored %d of %d pairs", batch.Count, len(req.Pairs))
	}

	rb, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("run report not written on shutdown: %v", err)
	}
	if _, err := obs.ValidateReportBytes(rb); err != nil {
		t.Fatalf("run report fails schema validation: %v", err)
	}
}

// ingestChunks posts db's records to /v1/ingest in order, id-prefixed
// by side, returning the final store stats.
func ingestChunks(t *testing.T, base string, db *dataset.Database, prefix string, wantFirstSeq int) serve.IngestResponse {
	t.Helper()
	attrs := db.Schema.Names()
	var last serve.IngestResponse
	const chunk = 64
	seq := wantFirstSeq
	for start := 0; start < len(db.Records); start += chunk {
		end := start + chunk
		if end > len(db.Records) {
			end = len(db.Records)
		}
		recs := make([]map[string]any, 0, end-start)
		for _, rec := range db.Records[start:end] {
			m := map[string]string{}
			for i, v := range rec.Values {
				m[attrs[i]] = v
			}
			recs = append(recs, map[string]any{"id": prefix + rec.ID, "attrs": m})
		}
		resp, body := postJSON(t, base+"/v1/ingest", map[string]any{"records": recs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest records %d..%d: %d: %s", start, end, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		for k, r := range last.Results {
			if r.Seq != seq+k {
				t.Fatalf("record %d ingested with seq %d, want %d", start+k, r.Seq, seq+k)
			}
		}
		seq += len(last.Results)
	}
	return last
}

// attrPayload renders one record as a resolve request body.
func attrPayload(db *dataset.Database, i int) map[string]any {
	attrs := db.Schema.Names()
	m := map[string]string{}
	for k, v := range db.Records[i].Values {
		m[attrs[k]] = v
	}
	return map[string]any{"attrs": m}
}

// TestServeStreamBatchParity is the streaming acceptance check: a
// server that ingests the A side of DBLP-ACM and resolves every B
// record must reproduce, byte for byte, the match CSV that the batch
// query engine (cmd/query -model -format csv) computes for the same
// linkage — same pairs, same ids, same %.6f scores.
func TestServeStreamBatchParity(t *testing.T) {
	dir := trainedDir(t)
	serveBin := testkit.BuildBinary(t, "transer/cmd/serve")
	queryBin := testkit.BuildBinary(t, "transer/cmd/query")
	aCSV := filepath.Join(dir, "dblp-acm-a.csv")
	bCSV := filepath.Join(dir, "dblp-acm-b.csv")
	modelPath := filepath.Join(dir, "model.json")

	batchCSV := filepath.Join(t.TempDir(), "batch.csv")
	testkit.RunBinary(t, queryBin, "-a", aCSV, "-b", bCSV, "-model", modelPath,
		"-block", "lsh", "-format", "csv", "-out", batchCSV)

	dbA, err := dataset.ReadCSVFile(aCSV, "a")
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := dataset.ReadCSVFile(bCSV, "b")
	if err != nil {
		t.Fatal(err)
	}

	p := startServe(t, serveBin, "-model", modelPath, "-stream")
	last := ingestChunks(t, p.base, dbA, "", 0)
	if last.Stats.Records != len(dbA.Records) {
		t.Fatalf("store has %d records after ingesting %d", last.Stats.Records, len(dbA.Records))
	}

	// Resolve every B record read-only; each reported match (seq, score)
	// is one batch pair (seq == A index: records were ingested in file
	// order into an empty store).
	var rows [][]string
	for j := range dbB.Records {
		resp, body := postJSON(t, p.base+"/v1/resolve", attrPayload(dbB, j))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resolve %d: %d: %s", j, resp.StatusCode, body)
		}
		var rr serve.ResolveResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		for _, m := range rr.Matches {
			rows = append(rows, []string{
				strconv.Itoa(m.Seq), strconv.Itoa(j), m.RecordID, dbB.Records[j].ID,
				strconv.FormatFloat(m.Score, 'f', 6, 64),
			})
		}
	}
	p.stop(t)
	if len(rows) == 0 {
		t.Fatal("no streaming matches: parity check is vacuous")
	}
	// Collected b-major; the batch CSV is (a, b)-sorted. The stable
	// re-sort by a keeps b ascending within each a.
	sort.SliceStable(rows, func(i, j int) bool {
		ai, _ := strconv.Atoi(rows[i][0])
		aj, _ := strconv.Atoi(rows[j][0])
		return ai < aj
	})
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	cw.Write([]string{"a", "b", "id_a", "id_b", "score"})
	for _, row := range rows {
		cw.Write(row)
	}
	cw.Flush()

	want, err := os.ReadFile(batchCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		wantLines := strings.Split(string(want), "\n")
		gotLines := strings.Split(buf.String(), "\n")
		for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
			var w, g string
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if w != g {
				t.Fatalf("streaming CSV diverges from batch at line %d:\nbatch:  %q\nstream: %q\n(%d batch lines, %d stream lines)",
					i, w, g, len(wantLines), len(gotLines))
			}
		}
		t.Fatal("byte difference without a line difference (line endings?)")
	}
}

// TestServeStreamDrainAndRecovery exercises the durable streaming
// lifecycle end to end: ingest both DBLP-ACM sides (>200 records),
// resolve probes, SIGTERM with an ingest in flight (it must complete
// during the drain and land in the WAL + shutdown snapshot), then
// restart from the same state files and require every probe to resolve
// to the same entity ID — stability across a crash-restart cycle.
func TestServeStreamDrainAndRecovery(t *testing.T) {
	dir := trainedDir(t)
	bin := testkit.BuildBinary(t, "transer/cmd/serve")
	state := t.TempDir()
	wal := filepath.Join(state, "store.wal")
	snap := filepath.Join(state, "store.snap")
	modelPath := filepath.Join(dir, "model.json")

	dbA, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-acm-a.csv"), "a")
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-acm-b.csv"), "b")
	if err != nil {
		t.Fatal(err)
	}
	// Both domains share the (homogeneous-transfer) schema, so the
	// scholar sides pad the smoke corpus past 200 records.
	dbSA, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-scholar-a.csv"), "sa")
	if err != nil {
		t.Fatal(err)
	}
	dbSB, err := dataset.ReadCSVFile(filepath.Join(dir, "dblp-scholar-b.csv"), "sb")
	if err != nil {
		t.Fatal(err)
	}

	p := startServe(t, bin, "-model", modelPath,
		"-stream-wal", wal, "-stream-snapshot", snap, "-timeout", "60s")
	seq := 0
	for _, part := range []struct {
		db     *dataset.Database
		prefix string
	}{{dbA, "a:"}, {dbB, "b:"}, {dbSA, "sa:"}, {dbSB, "sb:"}} {
		ingestChunks(t, p.base, part.db, part.prefix, seq)
		seq += len(part.db.Records)
	}
	stored := seq
	if stored < 200 {
		t.Fatalf("smoke corpus has %d records, want >= 200", stored)
	}

	// 20 read-only probes over known stored content.
	const nProbes = 20
	entities := make([]uint64, nProbes)
	resolveProbes := func(base string) []uint64 {
		got := make([]uint64, nProbes)
		for i := 0; i < nProbes; i++ {
			resp, body := postJSON(t, base+"/v1/resolve", attrPayload(dbA, i*3))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("resolve probe %d: %d: %s", i, resp.StatusCode, body)
			}
			var rr serve.ResolveResponse
			if err := json.Unmarshal(body, &rr); err != nil {
				t.Fatal(err)
			}
			if !rr.Matched {
				t.Fatalf("probe %d (a stored record's own content) did not match", i)
			}
			got[i] = rr.EntityID
		}
		return got
	}
	copy(entities, resolveProbes(p.base))

	// SIGTERM with a large ingest in flight: non-matching filler so it
	// cannot disturb the probe entities, big enough to observe.
	filler := make([]map[string]any, 1500)
	for i := range filler {
		filler[i] = map[string]any{"id": fmt.Sprintf("drain:%d", i), "attrs": map[string]string{
			dbA.Schema.Names()[0]: fmt.Sprintf("zzqx drain filler %d payload", i),
		}}
	}
	// Unlisted attributes default to empty only if the schema allows;
	// send every attribute explicitly.
	for i := range filler {
		m := filler[i]["attrs"].(map[string]string)
		for _, name := range dbA.Schema.Names()[1:] {
			m[name] = ""
		}
	}
	b, err := json.Marshal(map[string]any{"records": filler})
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(p.base+"/v1/ingest", "application/json", bytes.NewReader(b))
		if err != nil {
			resCh <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resCh <- resp.StatusCode
	}()
	inFlight := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		var m serve.MetricsResponse
		getJSON(t, p.base+"/metrics", &m)
		if m.Metrics.Gauges["serve.in_flight"] >= 1 {
			inFlight = true
			break
		}
		time.Sleep(1 * time.Millisecond)
	}
	if !inFlight {
		t.Fatalf("filler ingest never became in-flight\n%s", p.log())
	}
	p.stop(t)
	if code := <-resCh; code != http.StatusOK {
		t.Fatalf("in-flight ingest answered %d during drain\n%s", code, p.log())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("shutdown snapshot missing: %v", err)
	}

	// Restart from the same WAL + snapshot: the store must recover
	// every record (including the drained filler) and keep the probes'
	// entity IDs.
	p2 := startServe(t, bin, "-model", modelPath,
		"-stream-wal", wal, "-stream-snapshot", snap)
	if !strings.Contains(p2.log(), "entity store ready") {
		t.Fatalf("restart did not report recovery:\n%s", p2.log())
	}
	wantReady := fmt.Sprintf("(%d records", stored+len(filler))
	if !strings.Contains(p2.log(), wantReady) {
		t.Fatalf("recovered store did not report %s:\n%s", wantReady, p2.log())
	}
	after := resolveProbes(p2.base)
	for i := range entities {
		if after[i] != entities[i] {
			t.Fatalf("probe %d entity changed across restart: %d -> %d", i, entities[i], after[i])
		}
	}
	p2.stop(t)
}
