// Command serve runs the online matching service: it loads a
// transer.model/v1 artifact (exported by cmd/transer -model-out) and
// serves match decisions over a JSON HTTP API.
//
// Usage:
//
//	serve -model model.json [-addr :8080] [-timeout 10s] \
//	      [-max-in-flight 0] [-max-queue 64] [-max-batch 10000] \
//	      [-workers 0] [-metrics-out report.json] \
//	      [-log-out serve.jsonl] [-log-level info]
//
// Endpoints (see internal/serve):
//
//	POST /v1/match         {"a": {attr: value, ...}, "b": {...}}
//	POST /v1/match/batch   {"pairs": [{"a": {...}, "b": {...}}, ...]}
//	POST /v1/ingest        {"records": [{"id": ..., "attrs": {...}}, ...]} (with -stream)
//	POST /v1/resolve       {"id": ..., "attrs": {...}} (with -stream)
//	GET  /v1/models        active model metadata (+ catalog with -repo)
//	POST /v1/models/select {"a": [...], "b": [...]} or {"signature": {...}} (with -repo)
//	POST /v1/models/reload hot-swap the artifact from disk
//	GET  /healthz          liveness + runtime/stream gauges
//	GET  /metrics          transer.serve.metrics/v1 JSON snapshot
//	GET  /metrics?format=prom  Prometheus text exposition (0.0.4)
//	GET  /debug/traces     tail-based trace capture (recent/errors/slowest)
//
// Every scored request carries a W3C traceparent: an incoming header
// continues the client's trace, otherwise a fresh one is minted; the
// response echoes it. -log-out enables trace-correlated JSONL event
// logging (one "serve.request" event per scored request, one
// "stream.ingest" decision event per admitted record); with logging
// off the instrumented paths cost zero allocations. Appending
// ?explain=1 to /v1/resolve or /v1/query returns decision provenance:
// candidate comparison vectors, the model's SHA-256 fingerprint, and
// the winning entity's journaled merge path.
//
// -stream enables the live entity store (internal/stream): ingested
// records resolve against everything already stored, with stable
// journaled entity IDs. -stream-wal gives the store a write-ahead log
// (replayed on start, torn tail truncated); -stream-snapshot loads a
// snapshot on start and writes one on graceful shutdown.
//
// -repo attaches a model repository (a catalog directory managed by
// cmd/repo): GET /v1/models appends the catalog after the active
// model, POST /v1/models/select ranks catalogued models against a
// target domain's signature or sample records, and the scoring
// endpoints accept a model=<selector> query parameter (fingerprint,
// unique prefix, model name, or a weighted "fp@w,fp@w" ensemble).
//
// A served model scores pairs byte-identically to the cmd/transer run
// that exported it, and batch responses are byte-identical for every
// -workers value. Requests beyond the in-flight + queue capacity are
// shed with 429 and a Retry-After hint.
//
// On SIGINT/SIGTERM the server stops accepting connections and drains
// in-flight requests (bounded by -drain) before exiting. -metrics-out
// writes a transer.obs.report/v1 run report on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"transer/internal/obs"
	"transer/internal/repo"
	"transer/internal/serve"
	"transer/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelPath   = flag.String("model", "", "transer.model/v1 artifact to serve (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request scoring deadline")
		maxInFlight = flag.Int("max-in-flight", 0, "max concurrently scored requests (0 = one per CPU)")
		maxQueue    = flag.Int("max-queue", 64, "max requests waiting for a slot before shedding with 429 (0 = shed as soon as every slot is busy)")
		maxBatch    = flag.Int("max-batch", 10000, "max pairs per batch request")
		workers     = flag.Int("workers", 0, "batch scoring worker pool (0 = one per CPU; responses identical for any value)")
		drain       = flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
		metricsOut  = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file` on shutdown")
		logOut      = flag.String("log-out", "", "write structured JSONL event logs to `file` (\"-\" or \"stderr\" for stderr; empty = logging disabled)")
		logLevel    = flag.String("log-level", "info", "minimum structured log level: debug, info, warn, error")
		streamOn    = flag.Bool("stream", false, "enable the live entity store and the /v1/ingest + /v1/resolve endpoints")
		streamWAL   = flag.String("stream-wal", "", "write-ahead log `file` for the entity store (replayed on start, torn tail truncated; implies -stream)")
		streamSnap  = flag.String("stream-snapshot", "", "snapshot `file` for the entity store (loaded on start if present, written on shutdown; implies -stream)")
		repoDir     = flag.String("repo", "", "model repository `directory` (enables /v1/models/select and the model= selector)")
	)
	flag.Parse()
	if *modelPath == "" {
		return errors.New("missing required flag -model")
	}

	reg, err := serve.NewModelRegistry(*modelPath)
	if err != nil {
		return err
	}
	// On the flag, 0 intuitively means "no queue"; serve.Config keeps 0
	// as "use the default" and takes negative for that.
	queue := *maxQueue
	if queue <= 0 {
		queue = -1
	}
	tr := obs.New("serve")
	lw, err := obs.OpenLogOutput(*logOut)
	if err != nil {
		return err
	}
	var logger *obs.Logger
	if lw != nil {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(lw, lv)
		logger.Instrument(tr.Metrics())
	}
	var store *stream.Store
	if *streamOn || *streamWAL != "" || *streamSnap != "" {
		cfg := stream.FromMatcher(reg.Matcher())
		cfg.Workers = *workers
		cfg.Metrics = tr.Metrics()
		cfg.Logger = logger
		store, err = stream.Recover(cfg, *streamSnap, *streamWAL)
		if err != nil {
			return fmt.Errorf("stream store recovery: %w", err)
		}
		stats := store.Stats()
		fmt.Fprintf(os.Stderr, "serve: entity store ready (%d records, %d entities)\n",
			stats.Records, stats.Entities)
	}
	var catalog *repo.Catalog
	if *repoDir != "" {
		catalog, err = repo.Open(*repoDir)
		if err != nil {
			// Open returns a usable catalog alongside an error listing
			// invalid artifact files; serve what is valid, but say so.
			if catalog == nil {
				return fmt.Errorf("model repository: %w", err)
			}
			fmt.Fprintln(os.Stderr, "serve: model repository:", err)
		}
		fmt.Fprintf(os.Stderr, "serve: model repository %s (%d models)\n", *repoDir, catalog.Len())
	}
	srv, err := serve.New(serve.Config{
		Registry:      reg,
		MaxInFlight:   *maxInFlight,
		MaxQueue:      queue,
		Timeout:       *timeout,
		Workers:       *workers,
		MaxBatchPairs: *maxBatch,
		Tracer:        tr,
		Logger:        logger,
		Stream:        store,
		Catalog:       catalog,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	info := reg.Info()
	fmt.Fprintf(os.Stderr, "serve: model %q (%s classifier, %d features) on http://%s\n",
		info.Name, info.Classifier, len(info.Features), ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "serve: shutting down, draining in-flight requests")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}

	if store != nil {
		if *streamSnap != "" {
			if err := store.SnapshotFile(*streamSnap); err != nil {
				return fmt.Errorf("stream snapshot: %w", err)
			}
			fmt.Fprintf(os.Stderr, "serve: entity store snapshot written to %s\n", *streamSnap)
		}
		if err := store.CloseWAL(); err != nil {
			return fmt.Errorf("stream wal close: %w", err)
		}
	}

	if lw != nil {
		// The flush is spanned so run reports account for log shutdown
		// cost (benchreport's "log" phase).
		lsp := tr.Root().Child("log:flush")
		err := lw.Close()
		lsp.End()
		if err != nil {
			return fmt.Errorf("log close: %w", err)
		}
	}

	if *metricsOut != "" {
		report := obs.BuildReport("serve", os.Args[1:], tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "serve: drained, bye")
	return nil
}
