package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"transer/internal/dataset"
	"transer/internal/obs"
	"transer/internal/testkit"
)

func TestDatagenWritesDatasetPair(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/datagen")
	dir := t.TempDir()
	out := testkit.RunBinary(t, bin, "-dataset", "dblp-acm", "-scale", "0.05", "-out", dir)
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "true matches") {
		t.Fatalf("unexpected datagen output:\n%s", out)
	}
	// The emitted CSVs must parse back through the library reader.
	for _, side := range []string{"a", "b"} {
		path := filepath.Join(dir, "dblp-acm-"+side+".csv")
		db, err := dataset.ReadCSVFile(path, "check")
		if err != nil {
			t.Fatalf("reading %s back: %v", path, err)
		}
		if db.NumRecords() == 0 {
			t.Fatalf("%s holds no records", path)
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("%s is invalid: %v", path, err)
		}
	}
}

func TestDatagenUnknownDataset(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/datagen")
	out := testkit.RunBinaryErr(t, bin, "-dataset", "no-such-set", "-out", t.TempDir())
	if !strings.Contains(out, "unknown dataset") {
		t.Fatalf("want an unknown-dataset diagnostic, got:\n%s", out)
	}
}

func TestDatagenUsageListsFlags(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/datagen")
	// -h exit status varies across flag-package versions; only the
	// usage text matters here.
	out, _ := exec.Command(bin, "-h").CombinedOutput()
	for _, flag := range []string{"-out", "-dataset", "-scale"} {
		if !strings.Contains(string(out), flag) {
			t.Fatalf("usage output lacks %s:\n%s", flag, out)
		}
	}
}

// TestDatagenMetricsReport validates the run report: one generate span
// per data set with record counts, plus the record/match counters.
func TestDatagenMetricsReport(t *testing.T) {
	bin := testkit.BuildBinary(t, "transer/cmd/datagen")
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	testkit.RunBinary(t, bin, "-dataset", "mb", "-scale", "0.05", "-out", dir,
		"-metrics-out", report)
	b, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	r, err := obs.ValidateReportBytes(b)
	if err != nil {
		t.Fatalf("report fails schema validation: %v", err)
	}
	gen := r.Span.Find("generate:mb@0.05")
	if gen == nil {
		t.Fatalf("report lacks the generate span; tree: %+v", r.Span)
	}
	for _, attr := range []string{"records_a", "records_b", "matches"} {
		if _, ok := gen.Attrs[attr]; !ok {
			t.Errorf("generate span lacks the %s attribute: %v", attr, gen.Attrs)
		}
	}
	if r.Metrics.Counters["datagen.records_total"] == 0 {
		t.Errorf("record counter missing: %v", r.Metrics.Counters)
	}
}
