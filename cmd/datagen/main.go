// Command datagen emits the synthetic data set stand-ins as CSV files
// so they can be inspected, versioned, or consumed by external tools.
//
// Usage:
//
//	datagen -out ./data -scale 0.5            # all seven data sets
//	datagen -out ./data -dataset mb -scale 1  # one data set
//	datagen -out ./data -metrics-out report.json
//
// Each data set produces two CSVs (the A and B databases); record rows
// carry the ground-truth entity id in the second column. -metrics-out
// writes a transer.obs.report/v1 JSON run report with one
// generate/write span and record/match counters per data set;
// -cpuprofile, -memprofile and -exectrace capture runtime profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"transer/internal/datagen"
	"transer/internal/dataset"
	"transer/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out        = flag.String("out", ".", "output directory")
		name       = flag.String("dataset", "all", "dataset: dblp-acm|dblp-scholar|msd|mb|ios-bpdp|kil-bpdp|ios-bpbp|kil-bpbp|all")
		scale      = flag.Float64("scale", 0.5, "size scale factor")
		metricsOut = flag.String("metrics-out", "", "write a JSON run report (spans + metrics) to `file`")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace to `file`")
	)
	flag.Parse()

	gens := map[string]func(float64) datagen.DomainPair{
		"dblp-acm":     datagen.DBLPACM,
		"dblp-scholar": datagen.DBLPScholar,
		"msd":          datagen.MSD,
		"mb":           datagen.MB,
		"ios-bpdp":     datagen.IOSBpDp,
		"kil-bpdp":     datagen.KILBpDp,
		"ios-bpbp":     datagen.IOSBpBp,
		"kil-bpbp":     datagen.KILBpBp,
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	var names []string
	if *name == "all" {
		for k := range gens {
			names = append(names, k)
		}
	} else if _, ok := gens[*name]; ok {
		names = []string{*name}
	} else {
		return fmt.Errorf("unknown dataset %q", *name)
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
		}
	}()
	tr := obs.New("datagen")
	records := tr.Metrics().Counter("datagen.records_total")
	matches := tr.Metrics().Counter("datagen.matches_total")

	for _, n := range names {
		sp := tr.Root().Child(fmt.Sprintf("generate:%s@%.2f", n, *scale))
		pair := gens[n](*scale)
		for side, db := range map[string]*dataset.Database{"a": pair.A, "b": pair.B} {
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.csv", strings.ToLower(n), side))
			if err := dataset.WriteCSVFile(path, db); err != nil {
				return err
			}
			records.Add(int64(db.NumRecords()))
			sp.SetInt("records_"+side, int64(db.NumRecords()))
			fmt.Printf("wrote %s (%d records)\n", path, db.NumRecords())
		}
		truth := len(pair.Truth())
		matches.Add(int64(truth))
		sp.SetInt("matches", int64(truth))
		sp.End()
		fmt.Printf("%s: %d true matches\n", pair.Name, truth)
	}

	if *metricsOut != "" {
		report := obs.BuildReport("datagen", os.Args[1:], tr)
		if err := report.WriteFile(*metricsOut); err != nil {
			return err
		}
	}
	return nil
}
