// Command datagen emits the synthetic data set stand-ins as CSV files
// so they can be inspected, versioned, or consumed by external tools.
//
// Usage:
//
//	datagen -out ./data -scale 0.5            # all seven data sets
//	datagen -out ./data -dataset mb -scale 1  # one data set
//
// Each data set produces two CSVs (the A and B databases); record rows
// carry the ground-truth entity id in the second column.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"transer/internal/datagen"
	"transer/internal/dataset"
)

func main() {
	var (
		out   = flag.String("out", ".", "output directory")
		name  = flag.String("dataset", "all", "dataset: dblp-acm|dblp-scholar|msd|mb|ios-bpdp|kil-bpdp|ios-bpbp|kil-bpbp|all")
		scale = flag.Float64("scale", 0.5, "size scale factor")
	)
	flag.Parse()

	gens := map[string]func(float64) datagen.DomainPair{
		"dblp-acm":     datagen.DBLPACM,
		"dblp-scholar": datagen.DBLPScholar,
		"msd":          datagen.MSD,
		"mb":           datagen.MB,
		"ios-bpdp":     datagen.IOSBpDp,
		"kil-bpdp":     datagen.KILBpDp,
		"ios-bpbp":     datagen.IOSBpBp,
		"kil-bpbp":     datagen.KILBpBp,
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var names []string
	if *name == "all" {
		for k := range gens {
			names = append(names, k)
		}
	} else if _, ok := gens[*name]; ok {
		names = []string{*name}
	} else {
		fatal(fmt.Errorf("unknown dataset %q", *name))
	}
	for _, n := range names {
		pair := gens[n](*scale)
		for side, db := range map[string]*dataset.Database{"a": pair.A, "b": pair.B} {
			path := filepath.Join(*out, fmt.Sprintf("%s-%s.csv", strings.ToLower(n), side))
			if err := dataset.WriteCSVFile(path, db); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d records)\n", path, db.NumRecords())
		}
		fmt.Printf("%s: %d true matches\n", pair.Name, len(pair.Truth()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
