package transer

import (
	"fmt"
	"time"

	"transer/internal/eval"
	"transer/internal/ml"
	"transer/internal/ml/forest"
	"transer/internal/ml/logreg"
	"transer/internal/ml/svm"
	"transer/internal/ml/tree"
	"transer/internal/transfer"
)

// NamedClassifier pairs a classifier factory with a display name.
type NamedClassifier = ml.Named

// DefaultClassifier returns the default classifier factory (a random
// forest), the strongest single model on the synthetic benchmarks.
func DefaultClassifier() ClassifierFactory {
	return forest.Factory(forest.Config{Seed: 1})
}

// StandardClassifiers returns the four classifiers the paper averages
// its linkage quality results over (Section 5.1.1): a linear SVM, a
// random forest, a logistic regression, and a decision tree.
func StandardClassifiers(seed int64) []NamedClassifier {
	return []NamedClassifier{
		{Name: "svm", New: svm.Factory(svm.Config{Seed: seed})},
		{Name: "rf", New: forest.Factory(forest.Config{Seed: seed})},
		{Name: "logreg", New: logreg.Factory(logreg.Config{})},
		{Name: "dtree", New: tree.Factory(tree.Config{Seed: seed})},
	}
}

// Method is one transfer approach (TransER or a baseline).
type Method = transfer.Method

// Methods returns TransER plus the six baselines of the paper's
// Section 5.1.3, configured with the given seed.
func Methods(seed int64) []Method {
	return []Method{
		transfer.TransER{},
		transfer.Naive{},
		transfer.DTAL{Seed: seed},
		transfer.DR{Seed: seed},
		transfer.LocIT{Seed: seed},
		transfer.TCA{Seed: seed},
		transfer.Coral{},
	}
}

// MethodByName resolves a method display name ("TransER", "Naive",
// "DTAL*", "DR", "LocIT*", "TCA", "Coral") to its implementation.
func MethodByName(name string, seed int64) (Method, error) {
	for _, m := range Methods(seed) {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("transer: unknown method %q", name)
}

// TransERWithConfig returns the TransER method with a custom
// configuration, for parameter sweeps and ablations.
func TransERWithConfig(cfg Config) Method {
	return transfer.TransER{Config: cfg}
}

// MethodEvaluation is the outcome of running one method over the
// standard classifier set on one source→target task.
type MethodEvaluation struct {
	// Method is the method display name.
	Method string
	// PerClassifier holds one Metrics per standard classifier.
	PerClassifier []Metrics
	// Aggregate is mean ± std over PerClassifier, the format of the
	// paper's Table 2.
	Aggregate eval.MetricsAggregate
	// Runtime is the total wall-clock across the classifier sweep
	// (Table 3 reports this per method).
	Runtime time.Duration
}

// newTask converts a source/target Domain pair into the internal task
// representation consumed by transfer methods.
func newTask(source, target *Domain) *transfer.Task {
	return &transfer.Task{
		XS: source.X, YS: source.Y, XT: target.X,
		SourceA: source.A, SourceB: source.B,
		TargetA: target.A, TargetB: target.B,
		SourcePairs: source.Pairs, TargetPairs: target.Pairs,
	}
}

// RunMethod executes one transfer method with one classifier factory.
func RunMethod(m Method, source, target *Domain, factory ClassifierFactory) (*Result, error) {
	if !source.Labelled() {
		return nil, fmt.Errorf("transer: source domain %q has no labels", source.Name)
	}
	res, err := m.Run(newTask(source, target), factory)
	if err != nil {
		return nil, err
	}
	return &Result{Labels: res.Labels, Proba: res.Proba, Classifier: res.Classifier}, nil
}

// EvaluateMethod runs a method once per standard classifier and
// aggregates linkage quality against the target's ground truth —
// exactly the paper's Table 2 protocol. The target must be labelled.
func EvaluateMethod(m Method, source, target *Domain, classifiers []NamedClassifier) (MethodEvaluation, error) {
	out := MethodEvaluation{Method: m.Name()}
	if target.Y == nil {
		return out, fmt.Errorf("transer: target domain %q has no ground truth to evaluate against", target.Name)
	}
	if len(classifiers) == 0 {
		classifiers = StandardClassifiers(1)
	}
	task := newTask(source, target)
	start := time.Now()
	for _, c := range classifiers {
		res, err := m.Run(task, c.New)
		if err != nil {
			return out, fmt.Errorf("transer: %s with %s: %w", m.Name(), c.Name, err)
		}
		out.PerClassifier = append(out.PerClassifier, eval.Evaluate(res.Labels, target.Y))
	}
	out.Runtime = time.Since(start)
	out.Aggregate = eval.AggregateMetrics(out.PerClassifier)
	return out, nil
}
